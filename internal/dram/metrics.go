package dram

import "dcl1sim/internal/metrics"

// RegisterMetrics registers the channel's series under comp in the memory
// clock domain.
func (c *Channel) RegisterMetrics(r *metrics.Registry, comp, domain string) {
	s := &c.Stat
	r.Counter(comp, domain, "dram_reads_total",
		"read bursts serviced", func() int64 { return s.Reads })
	r.Counter(comp, domain, "dram_writes_total",
		"write bursts serviced", func() int64 { return s.Writes })
	r.Counter(comp, domain, "dram_row_hits_total",
		"row-buffer hits", func() int64 { return s.RowHits })
	r.Counter(comp, domain, "dram_row_misses_total",
		"row-buffer misses", func() int64 { return s.RowMisses })
	r.Counter(comp, domain, "dram_busy_burst_cycles_total",
		"cycles the data bus was occupied", func() int64 { return s.BusyBurst })
	r.Counter(comp, domain, "dram_refreshes_total",
		"refresh commands issued", func() int64 { return s.Refreshes })
	r.Gauge(comp, domain, "dram_row_hit_rate",
		"row-buffer hit fraction", func() float64 { return s.RowHitRate() })
	r.Gauge(comp, domain, "dram_bus_utilization",
		"data-bus busy fraction", func() float64 { return s.BusUtilization() })
}
