package dram

import (
	"testing"

	"dcl1sim/internal/mem"
	"dcl1sim/internal/sim"
)

func TestRefreshDisabledByDefault(t *testing.T) {
	c := newChan()
	drive(c, 0, 10000)
	if c.Stat.Refreshes != 0 {
		t.Fatalf("refreshes = %d with TREFI unset", c.Stat.Refreshes)
	}
}

func TestRefreshFiresPeriodically(t *testing.T) {
	tm := DefaultTiming()
	tm.TREFI = 1000
	tm.TRFC = 100
	c := New(Params{Name: "r", Timing: tm})
	drive(c, 0, 10050)
	// First refresh at 1000, then every 1000: ~10 in 10050 cycles.
	if c.Stat.Refreshes < 9 || c.Stat.Refreshes > 11 {
		t.Fatalf("refreshes = %d, want ~10", c.Stat.Refreshes)
	}
}

func TestRefreshClosesRows(t *testing.T) {
	tm := DefaultTiming()
	tm.TREFI = 500
	tm.TRFC = 50
	c := New(Params{Name: "r", Timing: tm})
	// Open row 0 well before the refresh.
	c.In.Push(rd(0))
	drive(c, 0, 200)
	c.Out.Pop()
	// Cross the refresh boundary, then access the same row: must be a miss
	// (row was closed by auto-refresh).
	drive(c, 200, 400)
	c.In.Push(rd(1))
	drive(c, 600, 300)
	if c.Stat.RowHits != 0 {
		t.Fatalf("row survived refresh: hits = %d", c.Stat.RowHits)
	}
	if c.Stat.RowMisses != 2 {
		t.Fatalf("row misses = %d, want 2", c.Stat.RowMisses)
	}
}

func TestRefreshDelaysService(t *testing.T) {
	// A request arriving during refresh waits out TRFC.
	tm := DefaultTiming()
	tm.TREFI = 400
	tm.TRFC = 200
	c := New(Params{Name: "r", Timing: tm})
	drive(c, 0, 401) // land exactly at the start of the refresh window
	c.In.Push(rd(0))
	var served sim.Cycle = -1
	for cyc := sim.Cycle(401); cyc < 2000; cyc++ {
		c.Tick(cyc)
		if _, ok := c.Out.Pop(); ok {
			served = cyc
			break
		}
	}
	if served < 0 {
		t.Fatal("request never served")
	}
	if served < 600 {
		t.Fatalf("served at %d, inside the refresh window", served)
	}
}

func TestFCFSIgnoresRowHits(t *testing.T) {
	// Same request pattern as the FR-FCFS test: under FCFS the service
	// order must be strictly queue order.
	c := New(Params{Name: "f", FCFS: true})
	a1, b1, a2 := rd(0), rd(16*16), rd(1)
	a1.ID, b1.ID, a2.ID = 1, 2, 3
	c.In.Push(a1)
	c.In.Push(b1)
	c.In.Push(a2)
	var order []uint64
	for cyc := sim.Cycle(0); cyc < 800 && len(order) < 3; cyc++ {
		c.Tick(cyc)
		for {
			r, ok := c.Out.Pop()
			if !ok {
				break
			}
			order = append(order, r.ID)
		}
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("FCFS order = %v, want [1 2 3]", order)
	}
}

func TestFCFSSlowerThanFRFCFS(t *testing.T) {
	mk := func(fcfs bool) sim.Cycle {
		c := New(Params{Name: "x", FCFS: fcfs, QueueCap: 64})
		// Interleave two rows in the same bank: FR-FCFS batches row hits.
		for i := 0; i < 16; i++ {
			line := uint64(i % 2 * 16 * 16) // rows 0 and 1, bank 0
			c.In.Push(&mem.Access{Kind: mem.Load, Line: line + uint64(i/2), ReqBytes: 128})
		}
		done := 0
		var cyc sim.Cycle
		for ; done < 16 && cyc < 100000; cyc++ {
			c.Tick(cyc)
			for {
				if _, ok := c.Out.Pop(); !ok {
					break
				}
				done++
			}
		}
		return cyc
	}
	fr := mk(false)
	fc := mk(true)
	if fc <= fr {
		t.Fatalf("FCFS (%d) must be slower than FR-FCFS (%d) on row-thrashing mixes", fc, fr)
	}
}
