// Package workload provides synthetic trace generators standing in for the
// paper's 28 GPGPU applications (CUDA-SDK, Rodinia, SHOC, PolyBench, Tango).
//
// We cannot run the original CUDA binaries (no GPU simulator ecosystem in
// Go, no traces), so each application is modeled by the memory-access
// *structure* its published fingerprint implies — the quantities the DC-L1
// designs actually react to:
//
//   - SharedLines/SharedFrac/SharedZipf: the inter-core shared working set
//     (drives the replication ratio of Fig 1 and the gains of aggregation);
//   - PrivateLines: per-wavefront streaming footprint (capacity-insensitive
//     misses);
//   - CampStride: address-space striding that collapses onto few home DC-L1s
//     (partition camping: C-RAY, P-3MM, P-GEMM, P-2MM);
//   - Waves/BlockEvery/ComputePerMem: occupancy and latency tolerance
//     (C-NN's sensitivity to the extra core↔DC-L1 hops);
//   - CoalescedLines and the compute:memory ratio: L1 bandwidth demand
//     (P-2DCONV / P-3DCONV peak-bandwidth sensitivity);
//   - Imbalance: CTA-distribution skew (R-SC).
//
// The generator is deterministic per (app, core, wavefront, seed).
package workload

import (
	"sort"

	"dcl1sim/internal/core"
	"dcl1sim/internal/sim"
)

// Sched selects the CTA scheduling policy (Section VIII-A sensitivity).
type Sched uint8

// Schedulers. RoundRobin spreads consecutive CTAs across cores, so CTA-local
// sharing becomes inter-core sharing (maximum replication). Distributed maps
// nearby CTAs to the same core, converting part of that sharing into
// intra-core reuse.
const (
	RoundRobin Sched = iota
	Distributed
)

// Class labels the paper's application taxonomy.
type Class uint8

// Application classes (Fig 1, Fig 9, Fig 13a).
const (
	// ReplicationSensitive: repl > 25%, miss > 50%, >5% speedup at 16x L1.
	ReplicationSensitive Class = iota
	// PoorPerforming: replication-insensitive apps that suffer badly under
	// the fully-shared Sh40 (C-NN, C-RAY, P-3MM, P-GEMM, P-2DCONV).
	PoorPerforming
	// Insensitive: the remaining replication-insensitive applications.
	Insensitive
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case ReplicationSensitive:
		return "replication-sensitive"
	case PoorPerforming:
		return "poor-performing"
	case Insensitive:
		return "insensitive"
	default:
		return "unknown"
	}
}

// Source supplies the instruction streams of a workload: the synthetic Spec
// below, or a recorded trace (package trace) replayed wavefront by
// wavefront. The gpu package runs any Source.
type Source interface {
	// Label names the workload in results.
	Label() string
	// WavesFor returns the wavefront count of one core.
	WavesFor(coreID int) int
	// Program returns the instruction stream of one wavefront.
	Program(cores, coreID, waveID int, sched Sched, seed uint64) core.Program
}

// Spec defines one synthetic application.
type Spec struct {
	Name  string
	Suite string
	Class Class

	// Occupancy and instruction mix.
	Waves         int       // wavefronts per core
	ComputePerMem int       // compute ops between memory ops
	ComputeLat    sim.Cycle // compute pipeline latency
	BlockEvery    int       // every k-th memory op is load-use blocking (0 = never)
	BarrierEvery  int       // a CTA barrier after every k-th memory op (0 = never)

	// Shared (inter-core) region.
	SharedLines int     // footprint in cache lines
	SharedFrac  float64 // fraction of memory ops hitting the shared region
	SharedZipf  float64 // reuse skew within the shared region
	CampStride  int     // line stride (>1 collapses homes: partition camping)
	CampFrac    float64 // fraction of shared draws that camp (0 = all, when CampStride>1)

	// Private (per-wavefront) streaming region.
	PrivateLines int

	// Coalescing and payload.
	CoalescedLines int // lines per memory instruction
	Bytes          int // bytes needed per line (NoC#1 reply payload)

	// Traffic mix.
	WriteFrac  float64
	NonL1Frac  float64
	AtomicFrac float64

	// Imbalance adds extra wavefronts to every 4th core (R-SC's skewed CTA
	// distribution): 1.0 doubles those cores' wavefronts.
	Imbalance float64

	// Paper fingerprint (Fig 1), recorded for EXPERIMENTS.md comparisons.
	// Values are approximate readings of the figure.
	PaperReplRatio float64
	PaperMissRate  float64

	// shiftShared relocates the shared region (multiprogram partitions give
	// each co-running application a disjoint shared footprint).
	shiftShared uint64
}

// Label implements Source.
func (s Spec) Label() string { return s.Name }

// WavesFor returns the wavefront count for a core under this spec.
func (s Spec) WavesFor(coreID int) int {
	w := s.Waves
	if w <= 0 {
		w = 16
	}
	if s.Imbalance > 0 && coreID%4 == 0 {
		w += int(float64(w) * s.Imbalance)
	}
	return w
}

func (s Spec) withDefaults() Spec {
	if s.Waves <= 0 {
		s.Waves = 16
	}
	if s.ComputeLat <= 0 {
		s.ComputeLat = 4
	}
	if s.CoalescedLines <= 0 {
		s.CoalescedLines = 1
	}
	if s.Bytes <= 0 {
		s.Bytes = 32
	}
	if s.CampStride <= 0 {
		s.CampStride = 1
	}
	if s.CampStride > 1 && s.CampFrac <= 0 {
		s.CampFrac = 1
	}
	if s.PrivateLines <= 0 {
		s.PrivateLines = 1
	}
	return s
}

// Address-space layout (line numbers). Regions are disjoint by construction.
const (
	sharedRegionBase  = uint64(1) << 20
	nonL1RegionBase   = uint64(1) << 28
	privateRegionBase = uint64(1) << 30
	nonL1Lines        = 64
	maxWaveSlots      = 256 // private-region slots per core
)

// Program returns the deterministic instruction stream of one wavefront.
// cores is the machine's core count (needed by the Distributed scheduler to
// slice the shared region), and seed decorrelates independent runs.
func (s Spec) Program(cores, coreID, waveID int, sched Sched, seed uint64) core.Program {
	sp := s.withDefaults()
	h := seed
	h = h*1099511628211 + uint64(coreID)
	h = h*1099511628211 + uint64(waveID)
	for _, ch := range sp.Name {
		h = h*1099511628211 + uint64(ch)
	}
	g := &gen{
		spec:  sp,
		cores: cores,
		core:  coreID,
		wave:  waveID,
		sched: sched,
		rng:   sim.NewRNG(h),
	}
	slot := uint64(coreID*maxWaveSlots + waveID)
	// Region spacing is forced odd and the stream starts at a random offset:
	// otherwise every wavefront's k-th access shares one address residue and
	// the whole machine convoys on a single L2 slice / memory channel.
	spacing := uint64(sp.PrivateLines + 65)
	spacing |= 1
	g.privBase = privateRegionBase + slot*spacing
	g.privCursor = g.rng.Uint64() % uint64(sp.PrivateLines)
	return g
}

type gen struct {
	spec  Spec
	cores int
	core  int
	wave  int
	sched Sched
	rng   *sim.RNG

	privBase    uint64
	privCursor  uint64
	memCount    int64
	computeLeft int
	primed      bool
	barrierDone bool

	// scratch backs the Lines slice of the op most recently returned by Next.
	// The core copies Lines at the issue site before calling Next again, and
	// trace.Capture deep-copies, so reuse is safe and keeps the generator
	// allocation-free in steady state.
	scratch []uint64
}

// Next implements core.Program. The stream is infinite: runs use fixed
// measurement windows, not program completion.
func (g *gen) Next() core.Op {
	if !g.primed {
		g.primed = true
		g.computeLeft = g.spec.ComputePerMem
	}
	if g.computeLeft > 0 {
		g.computeLeft--
		return core.Op{Kind: core.OpCompute, Latency: g.spec.ComputeLat}
	}
	if g.spec.BarrierEvery > 0 && g.memCount > 0 &&
		g.memCount%int64(g.spec.BarrierEvery) == 0 && !g.barrierDone {
		g.barrierDone = true
		return core.Op{Kind: core.OpBarrier}
	}
	g.barrierDone = false
	g.computeLeft = g.spec.ComputePerMem
	return g.memOp()
}

func (g *gen) memOp() core.Op {
	g.memCount++
	r := g.rng.Float64()
	kind := core.OpLoad
	switch {
	case r < g.spec.NonL1Frac:
		kind = core.OpNonL1
	case r < g.spec.NonL1Frac+g.spec.AtomicFrac:
		kind = core.OpAtomic
	case r < g.spec.NonL1Frac+g.spec.AtomicFrac+g.spec.WriteFrac:
		kind = core.OpStore
	}
	if kind == core.OpNonL1 {
		line := nonL1RegionBase + uint64(g.rng.Intn(nonL1Lines))
		g.scratch = append(g.scratch[:0], line)
		return core.Op{Kind: kind, Lines: g.scratch, Bytes: mem128()}
	}
	lines := g.dataLines()
	blocking := false
	if kind == core.OpLoad && g.spec.BlockEvery > 0 && g.memCount%int64(g.spec.BlockEvery) == 0 {
		blocking = true
	}
	return core.Op{Kind: kind, Lines: lines, Bytes: g.spec.Bytes, Blocking: blocking}
}

func mem128() int { return 128 }

// dataLines draws the coalesced target lines of one memory instruction into
// the generator's scratch buffer (see the scratch field for the contract).
func (g *gen) dataLines() []uint64 {
	n := g.spec.CoalescedLines
	lines := g.scratch[:0]
	if g.spec.SharedLines > 0 && g.rng.Float64() < g.spec.SharedFrac {
		idx := g.sharedIndex()
		stride := uint64(1)
		if g.spec.CampStride > 1 && g.rng.Float64() < g.spec.CampFrac {
			stride = uint64(g.spec.CampStride)
		}
		base := sharedRegionBase + g.spec.shiftShared
		for i := 0; i < n; i++ {
			j := (idx + i) % g.spec.SharedLines
			lines = append(lines, base+uint64(j)*stride)
		}
		g.scratch = lines
		return lines
	}
	// Private streaming: sequential lines with wrap-around.
	for i := 0; i < n; i++ {
		lines = append(lines, g.privBase+(g.privCursor%uint64(g.spec.PrivateLines)))
		g.privCursor++
	}
	g.scratch = lines
	return lines
}

// sharedIndex picks an index in the shared region. Under the Distributed
// scheduler, half the draws come from a per-core slice: nearby CTAs (mapped
// to the same core) share data, so part of the inter-core sharing becomes
// core-local.
func (g *gen) sharedIndex() int {
	s := g.spec.SharedLines
	if g.sched == Distributed && g.rng.Float64() < 0.5 {
		per := s / g.cores
		if per < 1 {
			per = 1
		}
		base := (g.core * per) % s
		return (base + g.rng.Zipf(per, g.spec.SharedZipf)) % s
	}
	return g.rng.Zipf(s, g.spec.SharedZipf)
}

// registry --------------------------------------------------------------

var registry []Spec

func register(s Spec) { registry = append(registry, s) }

// Apps returns all application specs, sorted by name.
func Apps() []Spec {
	out := make([]Spec, len(registry))
	copy(out, registry)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ByName finds a spec.
func ByName(name string) (Spec, bool) {
	for _, s := range registry {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// ByClass returns the specs of one class, sorted by name.
func ByClass(c Class) []Spec {
	var out []Spec
	for _, s := range Apps() {
		if s.Class == c {
			out = append(out, s)
		}
	}
	return out
}

// Sensitive returns the 12 replication-sensitive applications.
func Sensitive() []Spec { return ByClass(ReplicationSensitive) }

// Poor returns the 5 poor-performing replication-insensitive applications.
func Poor() []Spec { return ByClass(PoorPerforming) }

// InsensitiveApps returns every replication-insensitive application
// (PoorPerforming plus Insensitive).
func InsensitiveApps() []Spec {
	return append(Poor(), ByClass(Insensitive)...)
}
