package workload

import (
	"testing"

	"dcl1sim/internal/core"
)

func TestRegistryHas28Apps(t *testing.T) {
	apps := Apps()
	if len(apps) != 28 {
		t.Fatalf("registry has %d apps, want 28", len(apps))
	}
	names := map[string]bool{}
	for _, a := range apps {
		if names[a.Name] {
			t.Fatalf("duplicate app %s", a.Name)
		}
		names[a.Name] = true
		if a.Suite == "" {
			t.Fatalf("%s missing suite", a.Name)
		}
	}
}

func TestClassCounts(t *testing.T) {
	if n := len(Sensitive()); n != 12 {
		t.Fatalf("replication-sensitive = %d, want 12", n)
	}
	if n := len(Poor()); n != 5 {
		t.Fatalf("poor-performing = %d, want 5", n)
	}
	if n := len(InsensitiveApps()); n != 16 {
		t.Fatalf("insensitive total = %d, want 16", n)
	}
}

func TestPoorPerformersAreThePaperFive(t *testing.T) {
	want := map[string]bool{"C-NN": true, "C-RAY": true, "P-3MM": true, "P-GEMM": true, "P-2DCONV": true}
	for _, s := range Poor() {
		if !want[s.Name] {
			t.Fatalf("unexpected poor performer %s", s.Name)
		}
		delete(want, s.Name)
	}
	if len(want) != 0 {
		t.Fatalf("missing poor performers: %v", want)
	}
}

func TestByName(t *testing.T) {
	s, ok := ByName("T-AlexNet")
	if !ok || s.Suite != "Tango" {
		t.Fatalf("ByName failed: %+v %v", s, ok)
	}
	if _, ok := ByName("nope"); ok {
		t.Fatal("ByName on unknown app succeeded")
	}
}

func TestProgramDeterminism(t *testing.T) {
	s, _ := ByName("C-BFS")
	p1 := s.Program(80, 3, 5, RoundRobin, 42)
	p2 := s.Program(80, 3, 5, RoundRobin, 42)
	for i := 0; i < 500; i++ {
		a, b := p1.Next(), p2.Next()
		if a.Kind != b.Kind || len(a.Lines) != len(b.Lines) {
			t.Fatalf("programs diverge at op %d", i)
		}
		for j := range a.Lines {
			if a.Lines[j] != b.Lines[j] {
				t.Fatalf("addresses diverge at op %d", i)
			}
		}
	}
	// Different wavefront → different stream.
	p3 := s.Program(80, 3, 6, RoundRobin, 42)
	same := true
	p1b := s.Program(80, 3, 5, RoundRobin, 42)
	for i := 0; i < 100; i++ {
		a, b := p1b.Next(), p3.Next()
		if a.Kind != b.Kind {
			same = false
			break
		}
		if a.Kind == core.OpLoad && len(a.Lines) > 0 && len(b.Lines) > 0 && a.Lines[0] != b.Lines[0] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different wavefronts produced identical streams")
	}
}

func TestComputeMemMix(t *testing.T) {
	s, _ := ByName("R-HS") // ComputePerMem = 4
	p := s.Program(80, 0, 0, RoundRobin, 1)
	comp, memo := 0, 0
	for i := 0; i < 1000; i++ {
		op := p.Next()
		if op.Kind == core.OpCompute {
			comp++
		} else {
			memo++
		}
	}
	ratio := float64(comp) / float64(memo)
	if ratio < 3.5 || ratio > 4.5 {
		t.Fatalf("compute:mem = %f, want ~4", ratio)
	}
}

func TestSharedVsPrivateSplit(t *testing.T) {
	s, _ := ByName("T-AlexNet") // SharedFrac = 0.97
	p := s.Program(80, 1, 1, RoundRobin, 7)
	shared, private := 0, 0
	for i := 0; i < 5000; i++ {
		op := p.Next()
		if op.Kind != core.OpLoad && op.Kind != core.OpStore {
			continue
		}
		if op.Lines[0] >= privateRegionBase {
			private++
		} else if op.Lines[0] >= sharedRegionBase && op.Lines[0] < nonL1RegionBase {
			shared++
		}
	}
	frac := float64(shared) / float64(shared+private)
	if frac < 0.90 || frac > 1.0 {
		t.Fatalf("shared fraction = %f, want ~0.97", frac)
	}
}

func TestSharedRegionIsInterCore(t *testing.T) {
	// Two cores' programs must overlap heavily in the shared region: that is
	// what creates replication across private L1s.
	s, _ := ByName("C-BFS")
	seen := map[uint64]int{}
	for c := 0; c < 2; c++ {
		p := s.Program(80, c, 0, RoundRobin, 3)
		mask := 1 << c
		for i := 0; i < 3000; i++ {
			op := p.Next()
			if op.Kind == core.OpCompute {
				continue
			}
			for _, l := range op.Lines {
				if l >= sharedRegionBase && l < nonL1RegionBase {
					seen[l] |= mask
				}
			}
		}
	}
	both := 0
	for _, m := range seen {
		if m == 3 {
			both++
		}
	}
	if both < 100 {
		t.Fatalf("only %d lines shared between cores", both)
	}
}

func TestPrivateRegionsDisjointAcrossWaves(t *testing.T) {
	s, _ := ByName("C-BLK") // pure private
	lines := map[uint64]int{}
	for w := 0; w < 3; w++ {
		p := s.Program(80, 2, w, RoundRobin, 9)
		for i := 0; i < 500; i++ {
			op := p.Next()
			if op.Kind == core.OpCompute {
				continue
			}
			for _, l := range op.Lines {
				if prev, ok := lines[l]; ok && prev != w {
					t.Fatalf("line %d shared between waves %d and %d", l, prev, w)
				}
				lines[l] = w
			}
		}
	}
}

func TestCampStrideCollapsesHomes(t *testing.T) {
	s, _ := ByName("C-RAY") // CampStride = 40
	p := s.Program(80, 0, 0, RoundRobin, 5)
	homes := map[uint64]bool{}
	n := 0
	for i := 0; i < 5000 && n < 500; i++ {
		op := p.Next()
		if op.Kind == core.OpCompute {
			continue
		}
		for _, l := range op.Lines {
			if l >= sharedRegionBase && l < nonL1RegionBase {
				homes[l%40] = true
				n++
			}
		}
	}
	if len(homes) != 1 {
		t.Fatalf("camping app touches %d of 40 homes, want 1", len(homes))
	}
}

func TestBlockingCadence(t *testing.T) {
	s, _ := ByName("C-NN") // BlockEvery = 1: every load blocks
	p := s.Program(80, 0, 0, RoundRobin, 11)
	for i := 0; i < 200; i++ {
		op := p.Next()
		if op.Kind == core.OpLoad && !op.Blocking {
			t.Fatal("C-NN loads must all be blocking")
		}
	}
}

func TestImbalanceWaves(t *testing.T) {
	s, _ := ByName("R-SC")
	if s.WavesFor(0) <= s.WavesFor(1) {
		t.Fatalf("core 0 must get extra waves: %d vs %d", s.WavesFor(0), s.WavesFor(1))
	}
	flat, _ := ByName("C-BLK")
	if flat.WavesFor(0) != flat.WavesFor(1) {
		t.Fatal("balanced app must have equal waves")
	}
}

func TestDistributedSchedulerLocalizesSharing(t *testing.T) {
	// Under Distributed, a core's shared draws must concentrate on its own
	// slice more than under RoundRobin.
	s, _ := ByName("T-AlexNet")
	count := func(sched Sched) int {
		p := s.Program(80, 10, 0, sched, 21)
		per := s.SharedLines / 80
		lo := uint64(10 * per)
		hi := lo + uint64(per)
		in := 0
		for i := 0; i < 4000; i++ {
			op := p.Next()
			if op.Kind == core.OpCompute {
				continue
			}
			l := op.Lines[0]
			if l < sharedRegionBase || l >= nonL1RegionBase {
				continue
			}
			idx := l - sharedRegionBase
			if idx >= lo && idx < hi {
				in++
			}
		}
		return in
	}
	rr, dist := count(RoundRobin), count(Distributed)
	if dist < rr*5 {
		t.Fatalf("distributed scheduler not localizing: rr=%d dist=%d", rr, dist)
	}
}

func TestNonL1Traffic(t *testing.T) {
	s := Spec{Name: "x", Waves: 8, NonL1Frac: 0.5, PrivateLines: 100, SharedLines: 0}
	p := s.Program(8, 0, 0, RoundRobin, 3)
	non, data := 0, 0
	for i := 0; i < 2000; i++ {
		op := p.Next()
		switch op.Kind {
		case core.OpNonL1:
			non++
			if op.Lines[0] < nonL1RegionBase || op.Lines[0] >= privateRegionBase {
				t.Fatal("non-L1 line outside its region")
			}
		case core.OpLoad, core.OpStore:
			data++
		}
	}
	frac := float64(non) / float64(non+data)
	if frac < 0.4 || frac > 0.6 {
		t.Fatalf("non-L1 fraction = %f", frac)
	}
}

func TestFingerprintsRecorded(t *testing.T) {
	for _, s := range Sensitive() {
		if s.PaperReplRatio < 0.25 {
			t.Errorf("%s: replication-sensitive app with paper repl %.2f < 0.25", s.Name, s.PaperReplRatio)
		}
		if s.PaperMissRate < 0.5 {
			t.Errorf("%s: replication-sensitive app with paper miss %.2f < 0.5", s.Name, s.PaperMissRate)
		}
	}
}

func TestCoalescedLineCount(t *testing.T) {
	s, _ := ByName("C-BFS") // CoalescedLines = 4
	p := s.Program(80, 0, 0, RoundRobin, 13)
	for i := 0; i < 500; i++ {
		op := p.Next()
		if op.Kind == core.OpLoad || op.Kind == core.OpStore {
			if len(op.Lines) != 4 {
				t.Fatalf("coalesced lines = %d, want 4", len(op.Lines))
			}
		}
	}
}
