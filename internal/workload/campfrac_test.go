package workload

import (
	"testing"

	"dcl1sim/internal/core"
)

func TestCampFracMixesStrides(t *testing.T) {
	s := Spec{
		Name: "halfcamp", Waves: 8,
		SharedLines: 500, SharedFrac: 1.0, SharedZipf: 0,
		CampStride: 40, CampFrac: 0.5, PrivateLines: 10,
	}
	p := s.Program(80, 0, 0, RoundRobin, 3)
	camped, uncamped := 0, 0
	for i := 0; i < 4000; i++ {
		op := p.Next()
		if op.Kind == core.OpCompute {
			continue
		}
		idx := op.Lines[0] - sharedRegionBase
		if idx%40 == 0 && idx >= 40 || idx == 0 {
			camped++ // multiples of 40 (the strided draws, plus idx 0 overlap)
		} else {
			uncamped++
		}
	}
	if camped == 0 || uncamped == 0 {
		t.Fatalf("CampFrac=0.5 must mix strided and dense draws: %d/%d", camped, uncamped)
	}
	frac := float64(camped) / float64(camped+uncamped)
	if frac < 0.35 || frac > 0.7 {
		t.Fatalf("camped fraction = %f, want ~0.5", frac)
	}
}

func TestCampFracDefaultsToFull(t *testing.T) {
	s := Spec{
		Name: "fullcamp", Waves: 8,
		SharedLines: 100, SharedFrac: 1.0, SharedZipf: 0,
		CampStride: 40, PrivateLines: 10,
	}
	p := s.Program(80, 0, 0, RoundRobin, 5)
	for i := 0; i < 1000; i++ {
		op := p.Next()
		if op.Kind == core.OpCompute {
			continue
		}
		if (op.Lines[0]-sharedRegionBase)%40 != 0 {
			t.Fatal("CampStride without CampFrac must stride every shared draw")
		}
	}
}

func TestPrivateStreamsAreStaggered(t *testing.T) {
	// The anti-convoy fix: different wavefronts must start their private
	// streams at different offsets, so concurrent first accesses spread
	// across L2 slices.
	s := Spec{Name: "stream", Waves: 8, PrivateLines: 1000, SharedLines: 0}
	residues := map[uint64]bool{}
	for w := 0; w < 16; w++ {
		p := s.Program(80, 0, w, RoundRobin, 1)
		for {
			op := p.Next()
			if op.Kind != core.OpCompute {
				residues[op.Lines[0]%32] = true
				break
			}
		}
	}
	if len(residues) < 8 {
		t.Fatalf("first accesses hit only %d of 32 L2 slices: convoy risk", len(residues))
	}
}

func TestClassString(t *testing.T) {
	if ReplicationSensitive.String() != "replication-sensitive" ||
		PoorPerforming.String() != "poor-performing" ||
		Insensitive.String() != "insensitive" ||
		Class(99).String() != "unknown" {
		t.Fatal("Class.String mismatch")
	}
}

func TestAtomicFraction(t *testing.T) {
	s := Spec{Name: "at", Waves: 4, PrivateLines: 50, AtomicFrac: 0.3}
	p := s.Program(8, 0, 0, RoundRobin, 2)
	atomics, total := 0, 0
	for i := 0; i < 3000; i++ {
		op := p.Next()
		if op.Kind == core.OpCompute {
			continue
		}
		total++
		if op.Kind == core.OpAtomic {
			atomics++
		}
	}
	frac := float64(atomics) / float64(total)
	if frac < 0.2 || frac > 0.4 {
		t.Fatalf("atomic fraction = %f, want ~0.3", frac)
	}
}

func TestBarrierCadence(t *testing.T) {
	s := Spec{Name: "bar", Waves: 8, PrivateLines: 20, BarrierEvery: 3, ComputePerMem: 1}
	p := s.Program(8, 0, 0, RoundRobin, 4)
	barriers, mems := 0, 0
	for i := 0; i < 3000; i++ {
		op := p.Next()
		switch op.Kind {
		case core.OpBarrier:
			barriers++
		case core.OpLoad, core.OpStore:
			mems++
		}
	}
	if barriers == 0 {
		t.Fatal("no barriers emitted")
	}
	ratio := float64(mems) / float64(barriers)
	if ratio < 2.5 || ratio > 3.5 {
		t.Fatalf("mem:barrier = %f, want ~3", ratio)
	}
	// BarrierEvery = 0 emits none.
	q := Spec{Name: "nobar", Waves: 8, PrivateLines: 20}.Program(8, 0, 0, RoundRobin, 4)
	for i := 0; i < 1000; i++ {
		if q.Next().Kind == core.OpBarrier {
			t.Fatal("barrier emitted with BarrierEvery=0")
		}
	}
}
