package workload

import (
	"testing"

	"dcl1sim/internal/core"
)

func TestPartitionLabel(t *testing.T) {
	a, _ := ByName("T-AlexNet")
	b, _ := ByName("C-BLK")
	p := NewPartition(16, a, b)
	if p.Label() != "T-AlexNet+C-BLK" {
		t.Fatalf("label = %q", p.Label())
	}
}

func TestPartitionAssignsBlocks(t *testing.T) {
	hot := Spec{Name: "hot", Waves: 4, SharedLines: 100, SharedFrac: 1.0, PrivateLines: 10}
	cold := Spec{Name: "cold", Waves: 8, SharedLines: 0, SharedFrac: 0, PrivateLines: 50}
	p := NewPartition(8, hot, cold)
	// Cores 0..3 run hot (4 waves), cores 4..7 run cold (8 waves).
	if p.WavesFor(0) != 4 || p.WavesFor(3) != 4 {
		t.Fatalf("hot block waves: %d %d", p.WavesFor(0), p.WavesFor(3))
	}
	if p.WavesFor(4) != 8 || p.WavesFor(7) != 8 {
		t.Fatalf("cold block waves: %d %d", p.WavesFor(4), p.WavesFor(7))
	}
}

func TestPartitionDisjointSharedRegions(t *testing.T) {
	a := Spec{Name: "a", Waves: 2, SharedLines: 64, SharedFrac: 1.0, PrivateLines: 4}
	b := Spec{Name: "b", Waves: 2, SharedLines: 64, SharedFrac: 1.0, PrivateLines: 4}
	p := NewPartition(4, a, b)
	seen := map[uint64]int{} // line -> partition mask
	for c := 0; c < 4; c++ {
		prog := p.Program(4, c, 0, RoundRobin, 1)
		mask := 1
		if c >= 2 {
			mask = 2
		}
		for i := 0; i < 500; i++ {
			op := prog.Next()
			if op.Kind == core.OpCompute {
				continue
			}
			for _, l := range op.Lines {
				if l >= sharedRegionBase && l < nonL1RegionBase {
					seen[l] |= mask
				}
			}
		}
	}
	for l, m := range seen {
		if m == 3 {
			t.Fatalf("line %d shared across partitions", l)
		}
	}
	if len(seen) == 0 {
		t.Fatal("no shared traffic observed")
	}
}

func TestPartitionPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewPartition(4) },
		func() { NewPartition(1, Spec{}, Spec{}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestRawPartitionDelegates(t *testing.T) {
	a := Spec{Name: "x", Waves: 4, PrivateLines: 8}
	p := Partition{Apps: []Spec{a, a}}
	if p.Label() != "x+x" {
		t.Fatal("label")
	}
	if p.WavesFor(0) != 4 {
		t.Fatal("waves")
	}
	prog := p.Program(8, 5, 1, RoundRobin, 2)
	if prog.Next().Kind == core.OpEnd {
		t.Fatal("raw partition program empty")
	}
}
