package workload

// Parameter glossary — how each Spec field maps to a hardware-visible
// behaviour, and the capacity anchors used to size the 28 applications on
// the paper's 80-core machine.
//
// Capacity anchors (lines of 128 B):
//
//	one private L1 (baseline)      256   (32 KB)
//	one DC-L1 node (40-node orgs)  512   (64 KB)
//	one Sh40+C10 cluster          2048   (4 nodes)
//	all L1s together             20480   (2.56 MB)
//	one L2 slice                  1024   (128 KB), 32768 chip-wide
//
// Placement rules of thumb used by the app specs:
//
//	SharedLines < 256            baseline already hits; replication-insensitive
//	256 < SharedLines < 2048     every aggregation level helps (C10 catches it)
//	2048 < SharedLines < 20480   only the fully shared Sh40 dedups it
//	                             (P-SYRK, S-Reduction: the paper's Sh40-only winners)
//	SharedLines > 20480          nothing on chip holds it; DRAM-bound
//
// Behavioural levers:
//
//	SharedFrac       how much of the benefit dedup can capture
//	SharedZipf       baseline hit rate on the shared region (hot-set size)
//	PrivateLines     per-wavefront streaming footprint; W×PrivateLines per
//	                 core decides whether private traffic hits L1 (<3/core),
//	                 L2, or streams to DRAM
//	CampStride=40    all camped lines take one home under Sh40 and one home
//	                 per cluster under C10 (partition camping, Section V-B);
//	                 CampFrac dilutes it
//	Waves            latency tolerance (multithreading depth)
//	BlockEvery       load-use fences; 1 = every load blocks (C-NN's latency
//	                 sensitivity)
//	ComputePerMem    memory intensity; 0 = every-cycle memory (the
//	                 bandwidth-bound 2D/3DCONV kernels)
//	CoalescedLines   transactions per instruction (port/bandwidth pressure)
//	Imbalance        extra wavefronts on every 4th core (R-SC's CTA skew)
//
// The private stream of every wavefront starts at a random offset within its
// region and regions are spaced by an odd stride: with lockstep round-robin
// issue, aligned streams would otherwise march through the same L2
// slice/memory channel residue on every cycle chip-wide (a convoy that
// throttled early versions of this simulator to 1/32 of its memory system).
