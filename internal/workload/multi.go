package workload

import (
	"strings"

	"dcl1sim/internal/core"
)

// Partition runs different applications on disjoint core ranges — the
// concurrent-kernel (multiprogramming) scenario. It is a natural extension
// study for the clustered DC-L1 design: when partition boundaries align with
// cluster boundaries, one application's working set cannot evict another's,
// whereas the fully shared organization mixes them.
type Partition struct {
	// Apps are assigned to cores round-robin by contiguous blocks:
	// core c runs Apps[c * len(Apps) / cores].
	Apps []Spec
}

var _ Source = Partition{}

// Label implements Source.
func (p Partition) Label() string {
	names := make([]string, len(p.Apps))
	for i, a := range p.Apps {
		names[i] = a.Name
	}
	return strings.Join(names, "+")
}

// appFor returns the spec covering a core, given the machine core count.
// Because Source.WavesFor does not receive the core count, Partition assumes
// block boundaries at multiples of blockCores (set by NewPartition).
type partitioned struct {
	Partition
	blockCores int
}

// NewPartition builds a Partition source for a machine with `cores` cores,
// splitting them into equal contiguous blocks, one per app. It panics when
// apps is empty or cores < len(apps).
func NewPartition(cores int, apps ...Spec) Source {
	if len(apps) == 0 {
		panic("workload: NewPartition needs at least one app")
	}
	if cores < len(apps) {
		panic("workload: fewer cores than partitions")
	}
	return partitioned{Partition: Partition{Apps: apps}, blockCores: cores / len(apps)}
}

func (p partitioned) appFor(coreID int) Spec {
	i := coreID / p.blockCores
	if i >= len(p.Apps) {
		i = len(p.Apps) - 1
	}
	return p.Apps[i]
}

// WavesFor implements Source.
func (p partitioned) WavesFor(coreID int) int {
	return p.appFor(coreID).WavesFor(coreID)
}

// Program implements Source. Each app keeps its own shared region: the seed
// is offset by the partition index so different apps never collide in the
// shared address space, and the private regions are disjoint by construction
// (per core/wave slots).
func (p partitioned) Program(cores, coreID, waveID int, sched Sched, seed uint64) core.Program {
	idx := coreID / p.blockCores
	if idx >= len(p.Apps) {
		idx = len(p.Apps) - 1
	}
	spec := p.Apps[idx]
	// Shift the shared region per partition so applications do not share
	// lines with each other.
	shifted := spec
	shifted.shiftShared = uint64(idx) * (1 << 24)
	return shifted.Program(cores, coreID, waveID, sched, seed+uint64(idx)*977)
}

// ModuleSource lets a Source customize per-module tenant placement in a
// multi-GPU machine: the builder calls ForModule once per module and programs
// that module's cores from the returned Source. Sources that do not implement
// it run the same program image on every module.
type ModuleSource interface {
	Source
	// ForModule returns the Source programming one module's cores.
	ForModule(module, modules int) Source
}

// ModuleMix places one tenant application per GPU module — the multi-GPU
// multiprogramming scenario (each module leased to a different job). Apps are
// assigned round-robin: module m runs Apps[m % len(Apps)]. Each tenant keeps
// its own shared region (shifted per module) and a per-module seed offset,
// the same isolation idiom Partition uses within one module. Used as a plain
// Source (single-module machine), it runs Apps[0] unshifted.
type ModuleMix struct {
	Apps []Spec
}

var _ ModuleSource = ModuleMix{}

// Label implements Source.
func (m ModuleMix) Label() string {
	names := make([]string, len(m.Apps))
	for i, a := range m.Apps {
		names[i] = a.Name
	}
	return strings.Join(names, "/")
}

// WavesFor implements Source (module 0's tenant).
func (m ModuleMix) WavesFor(coreID int) int {
	if len(m.Apps) == 0 {
		return 0
	}
	return m.Apps[0].WavesFor(coreID)
}

// Program implements Source (module 0's tenant, unshifted).
func (m ModuleMix) Program(cores, coreID, waveID int, sched Sched, seed uint64) core.Program {
	return m.Apps[0].Program(cores, coreID, waveID, sched, seed)
}

// ForModule implements ModuleSource. It panics when the mix has no apps.
func (m ModuleMix) ForModule(module, modules int) Source {
	if len(m.Apps) == 0 {
		panic("workload: ModuleMix needs at least one app")
	}
	return moduleTenant{spec: m.Apps[module%len(m.Apps)], idx: module}
}

// moduleTenant is one module's view of a ModuleMix: the tenant spec with the
// module-scoped shared-region shift and seed offset applied.
type moduleTenant struct {
	spec Spec
	idx  int
}

// Label implements Source.
func (t moduleTenant) Label() string { return t.spec.Name }

// WavesFor implements Source.
func (t moduleTenant) WavesFor(coreID int) int { return t.spec.WavesFor(coreID) }

// Program implements Source. Module 0 runs its tenant exactly as a
// single-module machine would (zero shift, zero seed offset).
func (t moduleTenant) Program(cores, coreID, waveID int, sched Sched, seed uint64) core.Program {
	shifted := t.spec
	shifted.shiftShared = uint64(t.idx) * (1 << 24)
	return shifted.Program(cores, coreID, waveID, sched, seed+uint64(t.idx)*977)
}

// Partition implements Source directly too (blockCores derived lazily per
// call via the cores argument) — but WavesFor lacks the core count, so the
// explicit NewPartition constructor is the supported path.
func (p Partition) WavesFor(coreID int) int {
	if len(p.Apps) == 0 {
		return 0
	}
	return p.Apps[0].WavesFor(coreID)
}

// Program implements Source for the raw Partition (equal blocks).
func (p Partition) Program(cores, coreID, waveID int, sched Sched, seed uint64) core.Program {
	return NewPartition(cores, p.Apps...).Program(cores, coreID, waveID, sched, seed)
}
