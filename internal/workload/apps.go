package workload

// The 28 evaluated applications (Section VII). Parameters are chosen so each
// app's *baseline* fingerprint approximates Fig 1 (replication ratio, L1 miss
// rate, 16x-capacity speedup) and the behaviours the text attributes to it.
// Capacity anchors for the 80-core machine: one 32 KB L1 holds 256 lines;
// all L1s together hold 20480 lines; one 64 KB DC-L1 (40-node designs) holds
// 512 lines; a 10-node cluster of Sh40+C10 holds 2048 lines.
//
// Class assignments follow the paper:
//   - 12 replication-sensitive apps (blue boxes in Fig 1);
//   - 5 poor-performing insensitive apps (Fig 9/13a): C-NN (latency),
//     C-RAY / P-3MM / P-GEMM (partition camping), P-2DCONV (peak L1 BW);
//   - 11 further insensitive apps, including R-SC (CTA imbalance, improves
//     under sharing) and C-BLK (zero replication).

func init() {
	// ---- Replication-sensitive (12) ------------------------------------
	register(Spec{
		Name: "T-AlexNet", Suite: "Tango", Class: ReplicationSensitive,
		Waves: 32, ComputePerMem: 1, BlockEvery: 3,
		SharedLines: 1600, SharedFrac: 0.97, SharedZipf: 0.25,
		PrivateLines: 300, CoalescedLines: 1, WriteFrac: 0.05,
		PaperReplRatio: 0.95, PaperMissRate: 0.90,
	})
	register(Spec{
		Name: "T-ResNet", Suite: "Tango", Class: ReplicationSensitive,
		Waves: 32, ComputePerMem: 1, BlockEvery: 3,
		SharedLines: 1800, SharedFrac: 0.96, SharedZipf: 0.25,
		PrivateLines: 400, CoalescedLines: 1, WriteFrac: 0.05,
		PaperReplRatio: 0.90, PaperMissRate: 0.88,
	})
	register(Spec{
		Name: "T-SqueezeNet", Suite: "Tango", Class: ReplicationSensitive,
		Waves: 32, ComputePerMem: 1, BlockEvery: 3,
		SharedLines: 1700, SharedFrac: 0.95, SharedZipf: 0.25,
		PrivateLines: 300, CoalescedLines: 1, WriteFrac: 0.05,
		PaperReplRatio: 0.90, PaperMissRate: 0.88,
	})
	register(Spec{
		Name: "C-BFS", Suite: "CUDA-SDK", Class: ReplicationSensitive,
		Waves: 24, ComputePerMem: 2, BlockEvery: 2,
		SharedLines: 1500, SharedFrac: 0.75, SharedZipf: 0.45,
		PrivateLines: 4000, CoalescedLines: 4, WriteFrac: 0.10,
		PaperReplRatio: 0.80, PaperMissRate: 0.75,
	})
	register(Spec{
		// Fig 8 calls this F-2MIM in the OCR; PolyBench 2MM. Partition
		// camping limits its Sh40 gain to ~6%; 10 home copies fix it.
		Name: "P-2MM", Suite: "PolyBench", Class: ReplicationSensitive,
		Waves: 32, ComputePerMem: 1, BlockEvery: 3,
		SharedLines: 1200, SharedFrac: 0.85, SharedZipf: 0.30, CampStride: 40, CampFrac: 0.20,
		PrivateLines: 300, CoalescedLines: 1, WriteFrac: 0.08,
		PaperReplRatio: 0.70, PaperMissRate: 0.80,
	})
	register(Spec{
		// Large shared footprint: only the fully-shared Sh40 dedups it
		// (2.4x there, 13% under C10+Boost).
		Name: "P-SYRK", Suite: "PolyBench", Class: ReplicationSensitive,
		Waves: 32, ComputePerMem: 1, BlockEvery: 3,
		SharedLines: 12000, SharedFrac: 0.92, SharedZipf: 0.20,
		PrivateLines: 3000, CoalescedLines: 1, WriteFrac: 0.06,
		PaperReplRatio: 0.85, PaperMissRate: 0.85,
	})
	register(Spec{
		// Same pattern as P-SYRK: loses 14% even under Sh40+C10+Boost.
		Name: "S-Reduction", Suite: "SHOC", Class: ReplicationSensitive,
		Waves: 32, ComputePerMem: 1, BlockEvery: 3,
		SharedLines: 13000, SharedFrac: 0.90, SharedZipf: 0.20,
		PrivateLines: 3000, CoalescedLines: 1, WriteFrac: 0.10,
		PaperReplRatio: 0.80, PaperMissRate: 0.85,
	})
	register(Spec{
		Name: "P-ATAX", Suite: "PolyBench", Class: ReplicationSensitive,
		Waves: 24, ComputePerMem: 2, BlockEvery: 3,
		SharedLines: 1000, SharedFrac: 0.80, SharedZipf: 0.35,
		PrivateLines: 250, CoalescedLines: 1, WriteFrac: 0.08,
		PaperReplRatio: 0.65, PaperMissRate: 0.70,
	})
	register(Spec{
		Name: "P-BICG", Suite: "PolyBench", Class: ReplicationSensitive,
		Waves: 24, ComputePerMem: 2, BlockEvery: 3,
		SharedLines: 1100, SharedFrac: 0.80, SharedZipf: 0.35,
		PrivateLines: 250, CoalescedLines: 1, WriteFrac: 0.08,
		PaperReplRatio: 0.65, PaperMissRate: 0.72,
	})
	register(Spec{
		Name: "P-MVT", Suite: "PolyBench", Class: ReplicationSensitive,
		Waves: 24, ComputePerMem: 2, BlockEvery: 3,
		SharedLines: 950, SharedFrac: 0.75, SharedZipf: 0.35,
		PrivateLines: 250, CoalescedLines: 1, WriteFrac: 0.08,
		PaperReplRatio: 0.60, PaperMissRate: 0.68,
	})
	register(Spec{
		Name: "P-GESUMMV", Suite: "PolyBench", Class: ReplicationSensitive,
		Waves: 24, ComputePerMem: 2, BlockEvery: 3,
		SharedLines: 1300, SharedFrac: 0.82, SharedZipf: 0.30,
		PrivateLines: 250, CoalescedLines: 1, WriteFrac: 0.08,
		PaperReplRatio: 0.70, PaperMissRate: 0.75,
	})
	register(Spec{
		// Replication-sensitive AND peak-L1-bandwidth sensitive: loses 3%
		// under Sh40, only gains (+31%) once NoC#1 is frequency-boosted.
		Name: "P-3DCONV", Suite: "PolyBench", Class: ReplicationSensitive,
		Waves: 48, ComputePerMem: 0, BlockEvery: 6,
		SharedLines: 800, SharedFrac: 0.85, SharedZipf: 0.40,
		PrivateLines: 1500, CoalescedLines: 2, WriteFrac: 0.10,
		PaperReplRatio: 0.60, PaperMissRate: 0.65,
	})

	// ---- Poor-performing replication-insensitive (5) --------------------
	register(Spec{
		// High L1 hit rate + low occupancy: cannot hide the extra
		// core↔DC-L1 latency (loses heavily under any DC-L1 design until
		// the NoC#1 boost).
		Name: "C-NN", Suite: "CUDA-SDK", Class: PoorPerforming,
		Waves: 4, ComputePerMem: 1, BlockEvery: 1,
		SharedLines: 0, SharedFrac: 0,
		PrivateLines: 40, CoalescedLines: 1, WriteFrac: 0.05,
		PaperReplRatio: 0.05, PaperMissRate: 0.10,
	})
	register(Spec{
		// Partition camping: shared lines stride by 40 so one home DC-L1
		// serves everything under Sh40.
		Name: "C-RAY", Suite: "CUDA-SDK", Class: PoorPerforming,
		Waves: 16, ComputePerMem: 2, BlockEvery: 1,
		SharedLines: 3000, SharedFrac: 0.60, SharedZipf: 0.30, CampStride: 40,
		PrivateLines: 120, CoalescedLines: 1, WriteFrac: 0.05,
		PaperReplRatio: 0.15, PaperMissRate: 0.40,
	})
	register(Spec{
		Name: "P-3MM", Suite: "PolyBench", Class: PoorPerforming,
		Waves: 24, ComputePerMem: 2, BlockEvery: 1,
		SharedLines: 2800, SharedFrac: 0.65, SharedZipf: 0.30, CampStride: 40,
		PrivateLines: 100, CoalescedLines: 1, WriteFrac: 0.08,
		PaperReplRatio: 0.20, PaperMissRate: 0.35,
	})
	register(Spec{
		Name: "P-GEMM", Suite: "PolyBench", Class: PoorPerforming,
		Waves: 24, ComputePerMem: 2, BlockEvery: 1,
		SharedLines: 2600, SharedFrac: 0.68, SharedZipf: 0.30, CampStride: 40,
		PrivateLines: 90, CoalescedLines: 1, WriteFrac: 0.08,
		PaperReplRatio: 0.20, PaperMissRate: 0.32,
	})
	register(Spec{
		// Peak-L1-bandwidth bound: high hit rate, no compute padding, wide
		// coalescing. Drops ~49% under Sh40+C10; Boost restores it.
		Name: "P-2DCONV", Suite: "PolyBench", Class: PoorPerforming,
		Waves: 48, ComputePerMem: 0, BlockEvery: 8,
		SharedLines: 0, SharedFrac: 0,
		PrivateLines: 5, CoalescedLines: 2, WriteFrac: 0.10,
		PaperReplRatio: 0.10, PaperMissRate: 0.20,
	})

	// ---- Remaining replication-insensitive (11) -------------------------
	register(Spec{
		// Zero replication, pure streaming, very latency tolerant.
		Name: "C-BLK", Suite: "CUDA-SDK", Class: Insensitive,
		Waves: 32, ComputePerMem: 4,
		SharedLines: 0, SharedFrac: 0,
		PrivateLines: 100000, CoalescedLines: 1, WriteFrac: 0.15,
		PaperReplRatio: 0.0, PaperMissRate: 0.95,
	})
	register(Spec{
		Name: "R-LUD", Suite: "Rodinia", Class: Insensitive,
		Waves: 16, ComputePerMem: 3, BlockEvery: 4,
		SharedLines: 300, SharedFrac: 0.20, SharedZipf: 0.60,
		PrivateLines: 400, CoalescedLines: 1, WriteFrac: 0.10,
		PaperReplRatio: 0.15, PaperMissRate: 0.45,
	})
	register(Spec{
		// CTA imbalance: every 4th core gets 2x wavefronts; the shared
		// DC-L1s smooth the resulting L1 hotspots (improves under Sh40).
		Name: "R-SC", Suite: "Rodinia", Class: Insensitive,
		Waves: 12, ComputePerMem: 1, BlockEvery: 3, Imbalance: 1.0,
		SharedLines: 800, SharedFrac: 0.30, SharedZipf: 0.40,
		PrivateLines: 1000, CoalescedLines: 1, WriteFrac: 0.10,
		PaperReplRatio: 0.20, PaperMissRate: 0.60,
	})
	register(Spec{
		Name: "R-BP", Suite: "Rodinia", Class: Insensitive,
		Waves: 24, ComputePerMem: 3, BlockEvery: 4,
		SharedLines: 400, SharedFrac: 0.30, SharedZipf: 0.50,
		PrivateLines: 800, CoalescedLines: 1, WriteFrac: 0.15,
		PaperReplRatio: 0.20, PaperMissRate: 0.55,
	})
	register(Spec{
		Name: "R-HS", Suite: "Rodinia", Class: Insensitive,
		Waves: 24, ComputePerMem: 4, BlockEvery: 4,
		SharedLines: 200, SharedFrac: 0.10, SharedZipf: 0.60,
		PrivateLines: 250, CoalescedLines: 1, WriteFrac: 0.10,
		PaperReplRatio: 0.10, PaperMissRate: 0.25,
	})
	register(Spec{
		Name: "R-KM", Suite: "Rodinia", Class: Insensitive,
		Waves: 24, ComputePerMem: 2, BlockEvery: 4,
		SharedLines: 256, SharedFrac: 0.40, SharedZipf: 1.00,
		PrivateLines: 3000, CoalescedLines: 1, WriteFrac: 0.05,
		PaperReplRatio: 0.25, PaperMissRate: 0.60,
	})
	register(Spec{
		Name: "R-NW", Suite: "Rodinia", Class: Insensitive,
		Waves: 16, ComputePerMem: 3, BlockEvery: 4,
		SharedLines: 300, SharedFrac: 0.20, SharedZipf: 0.50,
		PrivateLines: 600, CoalescedLines: 1, WriteFrac: 0.12,
		PaperReplRatio: 0.15, PaperMissRate: 0.50,
	})
	register(Spec{
		Name: "R-SRAD", Suite: "Rodinia", Class: Insensitive,
		Waves: 32, ComputePerMem: 3, BlockEvery: 5,
		SharedLines: 100, SharedFrac: 0.05,
		PrivateLines: 5000, CoalescedLines: 1, WriteFrac: 0.15,
		PaperReplRatio: 0.05, PaperMissRate: 0.80,
	})
	register(Spec{
		Name: "S-MD", Suite: "SHOC", Class: Insensitive,
		Waves: 24, ComputePerMem: 3, BlockEvery: 3,
		SharedLines: 220, SharedFrac: 0.50, SharedZipf: 0.80,
		PrivateLines: 700, CoalescedLines: 2, WriteFrac: 0.05,
		PaperReplRatio: 0.25, PaperMissRate: 0.40,
	})
	register(Spec{
		Name: "S-Scan", Suite: "SHOC", Class: Insensitive,
		Waves: 32, ComputePerMem: 1, BlockEvery: 4,
		SharedLines: 0, SharedFrac: 0,
		PrivateLines: 20000, CoalescedLines: 1, WriteFrac: 0.30,
		PaperReplRatio: 0.0, PaperMissRate: 0.90,
	})
	register(Spec{
		Name: "S-SPMV", Suite: "SHOC", Class: Insensitive,
		Waves: 24, ComputePerMem: 2, BlockEvery: 3,
		SharedLines: 240, SharedFrac: 0.50, SharedZipf: 0.90,
		PrivateLines: 4000, CoalescedLines: 2, WriteFrac: 0.05,
		PaperReplRatio: 0.25, PaperMissRate: 0.65,
	})
}
