// Package trace records and replays workload instruction streams. A trace
// decouples the simulator from the synthetic generators: users with real
// GPU memory traces (e.g. converted from a binary-instrumentation tool) can
// replay them through every cache organization, and synthetic workloads can
// be captured once and replayed bit-identically.
//
// The on-disk format is a compact little-endian binary stream:
//
//	magic "DCL1TRC1" | name len+bytes | cores u32 | waves u32 | ops u32
//	then, per (core, wave) in row-major order, `ops` records of:
//	  kind u8 | blocking u8 | latency u16 | bytes u16 | nlines u16 | lines u64...
//
// A replayed wavefront ends with OpEnd when its recorded stream is
// exhausted; runs longer than the trace simply idle those wavefronts, which
// mirrors how trace-driven simulators behave.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"dcl1sim/internal/core"
	"dcl1sim/internal/workload"
)

var magic = [8]byte{'D', 'C', 'L', '1', 'T', 'R', 'C', '1'}

// Trace is a fully loaded instruction trace implementing workload.Source.
type Trace struct {
	Name    string
	Cores   int
	Waves   int         // wavefronts per core (uniform)
	OpsPer  int         // ops recorded per wavefront
	streams [][]core.Op // indexed [core*Waves+wave]
}

var _ workload.Source = (*Trace)(nil)

// Label implements workload.Source.
func (t *Trace) Label() string { return t.Name }

// WavesFor implements workload.Source.
func (t *Trace) WavesFor(int) int { return t.Waves }

// Program implements workload.Source: replays one wavefront's stream. The
// sched and seed arguments are ignored — a trace is already scheduled.
func (t *Trace) Program(cores, coreID, waveID int, _ workload.Sched, _ uint64) core.Program {
	idx := coreID*t.Waves + waveID
	if coreID >= t.Cores || waveID >= t.Waves || idx >= len(t.streams) {
		// Machine larger than the trace: surplus wavefronts are empty.
		return &replay{}
	}
	return &replay{ops: t.streams[idx]}
}

type replay struct {
	ops []core.Op
	i   int
}

func (r *replay) Next() core.Op {
	if r.i >= len(r.ops) {
		return core.Op{Kind: core.OpEnd}
	}
	op := r.ops[r.i]
	r.i++
	return op
}

// Capture materializes opsPerWave operations of a synthetic workload into a
// trace for the given machine shape.
func Capture(src workload.Source, cores, opsPerWave int, sched workload.Sched, seed uint64) *Trace {
	waves := src.WavesFor(0)
	t := &Trace{
		Name:   src.Label(),
		Cores:  cores,
		Waves:  waves,
		OpsPer: opsPerWave,
	}
	for c := 0; c < cores; c++ {
		for w := 0; w < waves; w++ {
			p := src.Program(cores, c, w, sched, seed)
			ops := make([]core.Op, 0, opsPerWave)
			for i := 0; i < opsPerWave; i++ {
				op := p.Next()
				if op.Kind == core.OpEnd {
					break
				}
				// Deep-copy the line slice: generators may reuse buffers.
				if len(op.Lines) > 0 {
					lines := make([]uint64, len(op.Lines))
					copy(lines, op.Lines)
					op.Lines = lines
				}
				ops = append(ops, op)
			}
			t.streams = append(t.streams, ops)
		}
	}
	return t
}

// Write serializes the trace.
func Write(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	if err := writeString(bw, t.Name); err != nil {
		return err
	}
	for _, v := range []uint32{uint32(t.Cores), uint32(t.Waves), uint32(t.OpsPer)} {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	for _, stream := range t.streams {
		if err := binary.Write(bw, binary.LittleEndian, uint32(len(stream))); err != nil {
			return err
		}
		for _, op := range stream {
			if err := writeOp(bw, op); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// Read deserializes a trace.
func Read(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	var m [8]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if m != magic {
		return nil, errors.New("trace: bad magic (not a DCL1TRC1 file)")
	}
	name, err := readString(br)
	if err != nil {
		return nil, err
	}
	var cores, waves, ops uint32
	for _, p := range []*uint32{&cores, &waves, &ops} {
		if err := binary.Read(br, binary.LittleEndian, p); err != nil {
			return nil, err
		}
	}
	const maxDim = 1 << 20
	if cores > maxDim || waves > maxDim || ops > maxDim {
		return nil, errors.New("trace: implausible header dimensions")
	}
	t := &Trace{Name: name, Cores: int(cores), Waves: int(waves), OpsPer: int(ops)}
	n := int(cores) * int(waves)
	for i := 0; i < n; i++ {
		var sl uint32
		if err := binary.Read(br, binary.LittleEndian, &sl); err != nil {
			return nil, fmt.Errorf("trace: stream %d header: %w", i, err)
		}
		if sl > maxDim {
			return nil, errors.New("trace: implausible stream length")
		}
		stream := make([]core.Op, 0, sl)
		for j := uint32(0); j < sl; j++ {
			op, err := readOp(br)
			if err != nil {
				return nil, fmt.Errorf("trace: stream %d op %d: %w", i, j, err)
			}
			stream = append(stream, op)
		}
		t.streams = append(t.streams, stream)
	}
	return t, nil
}

func writeOp(w io.Writer, op core.Op) error {
	blocking := uint8(0)
	if op.Blocking {
		blocking = 1
	}
	hdr := []interface{}{
		uint8(op.Kind), blocking, uint16(op.Latency), uint16(op.Bytes), uint16(len(op.Lines)),
	}
	for _, v := range hdr {
		if err := binary.Write(w, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	for _, l := range op.Lines {
		if err := binary.Write(w, binary.LittleEndian, l); err != nil {
			return err
		}
	}
	return nil
}

func readOp(r io.Reader) (core.Op, error) {
	var kind, blocking uint8
	var latency, bytes, nlines uint16
	for _, p := range []interface{}{&kind, &blocking, &latency, &bytes, &nlines} {
		if err := binary.Read(r, binary.LittleEndian, p); err != nil {
			return core.Op{}, err
		}
	}
	op := core.Op{
		Kind:     core.OpKind(kind),
		Blocking: blocking != 0,
		Latency:  int64(latency),
		Bytes:    int(bytes),
	}
	if nlines > 4096 {
		return core.Op{}, errors.New("implausible coalesced line count")
	}
	if nlines > 0 {
		op.Lines = make([]uint64, nlines)
		for i := range op.Lines {
			if err := binary.Read(r, binary.LittleEndian, &op.Lines[i]); err != nil {
				return core.Op{}, err
			}
		}
	}
	return op, nil
}

func writeString(w io.Writer, s string) error {
	if len(s) > 1<<16-1 {
		return errors.New("trace: name too long")
	}
	if err := binary.Write(w, binary.LittleEndian, uint16(len(s))); err != nil {
		return err
	}
	_, err := io.WriteString(w, s)
	return err
}

func readString(r io.Reader) (string, error) {
	var n uint16
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return "", err
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}
