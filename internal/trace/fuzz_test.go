package trace

import (
	"bytes"
	"errors"
	"testing"

	"dcl1sim/internal/workload"
)

// FuzzRead hardens the trace parser against malformed inputs: it must either
// return an error or a structurally valid trace — never panic or allocate
// absurdly. Seeds include a valid trace and truncations of it.
func FuzzRead(f *testing.F) {
	tr := Capture(workload.Spec{
		Name: "seed", Waves: 2, PrivateLines: 10, SharedLines: 8, SharedFrac: 0.5,
	}, 2, 20, workload.RoundRobin, 1)
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:9])
	f.Add([]byte("DCL1TRC1"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A successfully parsed trace must be internally consistent.
		if got.Cores < 0 || got.Waves < 0 || len(got.streams) != got.Cores*got.Waves {
			t.Fatalf("inconsistent trace accepted: %+v streams=%d", got, len(got.streams))
		}
	})
}

// failWriter errors after n bytes, exercising Write's error paths.
type failWriter struct{ left int }

func (w *failWriter) Write(p []byte) (int, error) {
	if w.left <= 0 {
		return 0, errors.New("disk full")
	}
	n := len(p)
	if n > w.left {
		n = w.left
		w.left = 0
		return n, errors.New("disk full")
	}
	w.left -= n
	return n, nil
}

func TestWritePropagatesIOErrors(t *testing.T) {
	tr := Capture(workload.Spec{Name: "x", Waves: 2, PrivateLines: 10}, 2, 30, workload.RoundRobin, 1)
	// A range of failure points must all surface an error (bufio defers
	// flushing, so only sufficiently small budgets can fail).
	for _, budget := range []int{0, 1, 5, 64} {
		if err := Write(&failWriter{left: budget}, tr); err == nil {
			t.Errorf("budget %d: error swallowed", budget)
		}
	}
}

func TestWriteRejectsHugeName(t *testing.T) {
	tr := &Trace{Name: string(make([]byte, 1<<16)), Cores: 1, Waves: 1}
	var buf bytes.Buffer
	if err := Write(&buf, tr); err == nil {
		t.Fatal("oversized name accepted")
	}
}
