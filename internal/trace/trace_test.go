package trace

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"dcl1sim/internal/core"
	"dcl1sim/internal/workload"
)

func smallSpec() workload.Spec {
	return workload.Spec{
		Name: "tracee", Suite: "test", Waves: 3,
		ComputePerMem: 1, SharedLines: 50, SharedFrac: 0.5, SharedZipf: 0.3,
		PrivateLines: 40, CoalescedLines: 2, WriteFrac: 0.1, NonL1Frac: 0.05,
	}
}

func TestCaptureShape(t *testing.T) {
	tr := Capture(smallSpec(), 4, 100, workload.RoundRobin, 7)
	if tr.Cores != 4 || tr.Waves != 3 || tr.OpsPer != 100 {
		t.Fatalf("shape: %+v", tr)
	}
	if len(tr.streams) != 12 {
		t.Fatalf("streams = %d", len(tr.streams))
	}
	for i, s := range tr.streams {
		if len(s) != 100 {
			t.Fatalf("stream %d length %d", i, len(s))
		}
	}
	if tr.Label() != "tracee" {
		t.Fatal("label")
	}
}

func TestRoundTrip(t *testing.T) {
	tr := Capture(smallSpec(), 3, 80, workload.RoundRobin, 9)
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != tr.Name || got.Cores != tr.Cores || got.Waves != tr.Waves {
		t.Fatalf("header mismatch: %+v vs %+v", got, tr)
	}
	for i := range tr.streams {
		a, b := tr.streams[i], got.streams[i]
		if len(a) != len(b) {
			t.Fatalf("stream %d length %d vs %d", i, len(a), len(b))
		}
		for j := range a {
			if a[j].Kind != b[j].Kind || a[j].Blocking != b[j].Blocking ||
				a[j].Latency != b[j].Latency || a[j].Bytes != b[j].Bytes ||
				len(a[j].Lines) != len(b[j].Lines) {
				t.Fatalf("op %d/%d mismatch: %+v vs %+v", i, j, a[j], b[j])
			}
			for k := range a[j].Lines {
				if a[j].Lines[k] != b[j].Lines[k] {
					t.Fatalf("line mismatch at %d/%d/%d", i, j, k)
				}
			}
		}
	}
}

func TestReplayMatchesGenerator(t *testing.T) {
	spec := smallSpec()
	tr := Capture(spec, 2, 50, workload.RoundRobin, 3)
	gen := spec.Program(2, 1, 2, workload.RoundRobin, 3)
	rep := tr.Program(2, 1, 2, workload.RoundRobin, 3)
	for i := 0; i < 50; i++ {
		a, b := gen.Next(), rep.Next()
		if a.Kind != b.Kind {
			t.Fatalf("op %d kind %v vs %v", i, a.Kind, b.Kind)
		}
		for k := range a.Lines {
			if a.Lines[k] != b.Lines[k] {
				t.Fatalf("op %d line %d differs", i, k)
			}
		}
	}
	// Past the recorded length the replay ends.
	if op := rep.Next(); op.Kind != core.OpEnd {
		t.Fatalf("expected OpEnd, got %v", op.Kind)
	}
}

func TestReplayOutOfRangeWaveIsEmpty(t *testing.T) {
	tr := Capture(smallSpec(), 2, 10, workload.RoundRobin, 1)
	p := tr.Program(4, 3, 9, workload.RoundRobin, 1)
	if op := p.Next(); op.Kind != core.OpEnd {
		t.Fatal("surplus wavefront must be empty")
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("not a trace at all")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := Read(strings.NewReader("")); err == nil {
		t.Fatal("empty input accepted")
	}
	// Truncated valid prefix.
	tr := Capture(smallSpec(), 2, 10, workload.RoundRobin, 1)
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, err := Read(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated trace accepted")
	}
}

func TestReadRejectsImplausibleHeader(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(magic[:])
	buf.Write([]byte{0, 0})                   // empty name
	buf.Write([]byte{255, 255, 255, 255})     // cores = huge
	buf.Write([]byte{1, 0, 0, 0, 1, 0, 0, 0}) // waves, ops
	if _, err := Read(&buf); err == nil {
		t.Fatal("implausible header accepted")
	}
}

// Property: write/read round-trips arbitrary op streams.
func TestRoundTripProperty(t *testing.T) {
	f := func(kinds []uint8, linesSeed []uint16) bool {
		tr := &Trace{Name: "p", Cores: 1, Waves: 1, OpsPer: len(kinds)}
		var ops []core.Op
		for i, k := range kinds {
			op := core.Op{Kind: core.OpKind(k % 5), Latency: int64(i % 7), Bytes: i % 128}
			if op.Kind != core.OpCompute && len(linesSeed) > 0 {
				n := int(linesSeed[i%len(linesSeed)]%4) + 1
				for j := 0; j < n; j++ {
					op.Lines = append(op.Lines, uint64(i*j)+uint64(linesSeed[i%len(linesSeed)]))
				}
			}
			ops = append(ops, op)
		}
		tr.streams = [][]core.Op{ops}
		var buf bytes.Buffer
		if err := Write(&buf, tr); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		if len(got.streams[0]) != len(ops) {
			return false
		}
		for i := range ops {
			if got.streams[0][i].Kind != ops[i].Kind || len(got.streams[0][i].Lines) != len(ops[i].Lines) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
