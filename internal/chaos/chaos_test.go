package chaos

import (
	"strings"
	"testing"

	"dcl1sim/internal/sim"
)

func mustNorm(t *testing.T, s *Spec) *Spec {
	t.Helper()
	n, err := s.Normalized()
	if err != nil {
		t.Fatalf("Normalized: %v", err)
	}
	return n
}

// TestStreamDeterminism proves the core replay property: two injectors built
// from equal (spec, kind, id) make identical decisions at every queried cycle,
// while changing any coordinate of the stream identity reshuffles them.
func TestStreamDeterminism(t *testing.T) {
	spec := mustNorm(t, Heavy(42))
	a := New(spec, KindNoC, 3, "x")
	b := New(spec, KindNoC, 3, "x")
	for now := sim.Cycle(0); now < 4096; now++ {
		for out := 0; out < 4; out++ {
			if ga, gb := a.GrantPerturb(now, out, 2), b.GrantPerturb(now, out, 2); ga != gb {
				t.Fatalf("GrantPerturb diverged at cycle %d out %d: %d vs %d", now, out, ga, gb)
			}
			if ja, jb := a.OutputJammed(now, out), b.OutputJammed(now, out); ja != jb {
				t.Fatalf("OutputJammed diverged at cycle %d out %d", now, out)
			}
		}
		if da, db := a.DramJitter(now), b.DramJitter(now); da != db {
			t.Fatalf("DramJitter diverged at cycle %d: %d vs %d", now, da, db)
		}
	}
	if a.Fired() != b.Fired() {
		t.Fatalf("fired counts diverged: %d vs %d", a.Fired(), b.Fired())
	}
	if a.Fired() == 0 {
		t.Fatal("heavy preset fired nothing over 4096 cycles")
	}

	// A different component id, kind, or seed must not replay the same stream.
	diverges := func(name string, other *Injector) {
		t.Helper()
		for now := sim.Cycle(0); now < 4096; now++ {
			if a2 := New(spec, KindNoC, 3, "x"); a2.DramJitter(now) != other.DramJitter(now) {
				return
			}
		}
		t.Fatalf("%s: stream identical over 4096 cycles", name)
	}
	diverges("id", New(spec, KindNoC, 4, "y"))
	diverges("kind", New(spec, KindDram, 3, "y"))
	diverges("seed", New(mustNorm(t, Heavy(43)), KindNoC, 3, "y"))
}

// TestWindowedFaultShape checks that a windowed fault occupies exactly the
// leading cycles of an activated window and counts once per activation.
func TestWindowedFaultShape(t *testing.T) {
	spec := mustNorm(t, &Spec{Seed: 7, WindowLen: 32, IssueStallProb: 0.5, IssueStallLen: 5})
	in := New(spec, KindCore, 0, "core-0")
	activated := 0
	for start := sim.Cycle(0); start < 32*200; start += 32 {
		first := in.IssueStalled(start)
		if first {
			activated++
		}
		for off := sim.Cycle(1); off < 32; off++ {
			got := in.IssueStalled(start + off)
			want := first && off < 5
			if got != want {
				t.Fatalf("window %d offset %d: stalled=%v want %v", start, off, got, want)
			}
		}
	}
	if activated == 0 {
		t.Fatal("no windows activated at p=0.5 over 200 windows")
	}
	if in.Fired() != int64(activated) {
		t.Fatalf("Fired()=%d, want one per activated window (%d)", in.Fired(), activated)
	}
}

func TestValidate(t *testing.T) {
	bad := []*Spec{
		{FlitDelayProb: 1.5},
		{OutJamProb: -0.1},
		{WindowLen: -1},
		{CorruptAt: -5},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad spec %d validated: %+v", i, *s)
		}
	}
	if err := Light(1).Validate(); err != nil {
		t.Errorf("light preset invalid: %v", err)
	}
	if err := Heavy(1).Validate(); err != nil {
		t.Errorf("heavy preset invalid: %v", err)
	}
	var nilSpec *Spec
	if err := nilSpec.Validate(); err != nil {
		t.Errorf("nil spec invalid: %v", err)
	}
}

func TestNormalizedClamps(t *testing.T) {
	n := mustNorm(t, &Spec{Seed: 1, OutJamProb: 0.1, OutJamLen: 500, StormProb: 0.1, StormLen: 70})
	if n.WindowLen != DefaultWindowLen {
		t.Errorf("WindowLen = %d, want default %d", n.WindowLen, DefaultWindowLen)
	}
	if n.OutJamLen != DefaultWindowLen || n.StormLen != DefaultWindowLen {
		t.Errorf("durations not clamped to window: jam=%d storm=%d", n.OutJamLen, n.StormLen)
	}
	if _, err := (&Spec{FlitDelayProb: 2}).Normalized(); err == nil {
		t.Error("Normalized accepted invalid spec")
	}
}

func TestPreset(t *testing.T) {
	for _, name := range []string{"", "off", "none", "OFF", " Off "} {
		s, err := Preset(name, 1)
		if err != nil || s != nil {
			t.Errorf("Preset(%q) = %v, %v; want nil, nil", name, s, err)
		}
	}
	if s, err := Preset("light", 9); err != nil || s == nil || s.Seed != 9 {
		t.Errorf("Preset(light, 9) = %+v, %v", s, err)
	}
	if s, err := Preset("Heavy", 9); err != nil || s == nil {
		t.Errorf("Preset(Heavy) = %+v, %v", s, err)
	}
	if _, err := Preset("medium", 1); err == nil {
		t.Error("Preset(medium) did not error")
	}
	if (&Spec{}).Enabled() {
		t.Error("zero spec reports Enabled")
	}
	if !Light(1).Enabled() || !Heavy(1).Enabled() {
		t.Error("preset reports disabled")
	}
}

// TestNilInjector: every method must be a no-op on a nil receiver, so
// components can call their optional injector unconditionally.
func TestNilInjector(t *testing.T) {
	var in *Injector
	if in != New(nil, KindCore, 0, "c") {
		t.Error("New(nil spec) != nil")
	}
	if in.GrantPerturb(5, 0, 1) != 0 || in.DramJitter(5) != 0 {
		t.Error("nil injector perturbed timing")
	}
	if in.OutputJammed(5, 0) || in.RefreshStorm(5) || in.FillsBlocked(5) ||
		in.MSHRPinched(5) || in.IssueStalled(5) || in.CorruptNow(5) {
		t.Error("nil injector injected a fault")
	}
	if _, ok := in.CorruptWake(5); ok {
		t.Error("nil injector has a corrupt wake")
	}
	if in.Fired() != 0 || in.Events() != nil {
		t.Error("nil injector has state")
	}
}

func TestJamAllAfter(t *testing.T) {
	spec := mustNorm(t, &Spec{Seed: 1, JamAllAfter: 100})
	in := New(spec, KindNoC, 0, "xbar")
	for out := 0; out < 3; out++ {
		if in.OutputJammed(99, out) {
			t.Fatalf("output %d jammed before JamAllAfter", out)
		}
		for _, now := range []sim.Cycle{100, 101, 100000} {
			if !in.OutputJammed(now, out) {
				t.Fatalf("output %d not jammed at %d", out, now)
			}
		}
	}
	// Permanent jam counts once per output, not once per query.
	if in.Fired() != 3 {
		t.Errorf("Fired() = %d, want 3 (once per output)", in.Fired())
	}
}

func TestCorruptDrill(t *testing.T) {
	spec := mustNorm(t, &Spec{Seed: 1, CorruptAt: 250})
	in := New(spec, KindL1, 0, "l1")
	for _, now := range []sim.Cycle{0, 249, 251, 1000} {
		if in.CorruptNow(now) {
			t.Fatalf("CorruptNow fired at %d", now)
		}
	}
	if !in.CorruptNow(250) {
		t.Fatal("CorruptNow did not fire at CorruptAt")
	}
	if w, ok := in.CorruptWake(10); !ok || w != 250 {
		t.Errorf("CorruptWake(10) = %d, %v; want 250, true", w, ok)
	}
	if w, ok := in.CorruptWake(250); !ok || w != 250 {
		t.Errorf("CorruptWake(250) = %d, %v; want 250, true", w, ok)
	}
	if _, ok := in.CorruptWake(251); ok {
		t.Error("CorruptWake past the drill still pending")
	}
}

func TestFormatEventsCanonical(t *testing.T) {
	evs := []Event{
		{Comp: "b", Fault: "out-jam", Cycle: 64, Arg: 1},
		{Comp: "a", Fault: "out-jam", Cycle: 64, Arg: 2},
		{Comp: "c", Fault: "flit-delay", Cycle: 3, Arg: 1},
		{Comp: "a", Fault: "out-jam", Cycle: 64, Arg: 0},
	}
	want := "3 c flit-delay 1\n64 a out-jam 0\n64 a out-jam 2\n64 b out-jam 1\n"
	if got := FormatEvents(evs); got != want {
		t.Errorf("FormatEvents:\n%s\nwant:\n%s", got, want)
	}
	// FormatEvents must not reorder the caller's slice.
	if evs[0].Comp != "b" {
		t.Error("FormatEvents mutated its input")
	}
}

// TestRecordGating: the event log is only kept under Record, but Fired counts
// either way and identically.
func TestRecordGating(t *testing.T) {
	run := func(record bool) (int64, int) {
		s := Heavy(11)
		s.Record = record
		spec := mustNorm(t, s)
		in := New(spec, KindDram, 2, "dram-2")
		for now := sim.Cycle(0); now < 2048; now++ {
			in.DramJitter(now)
			in.RefreshStorm(now)
		}
		return in.Fired(), len(in.Events())
	}
	fired1, n1 := run(true)
	fired2, n2 := run(false)
	if fired1 != fired2 {
		t.Errorf("Record changed the schedule: fired %d vs %d", fired1, fired2)
	}
	if n1 == 0 {
		t.Error("Record kept no events")
	}
	if n2 != 0 {
		t.Errorf("events kept without Record: %d", n2)
	}
	if int64(n1) != fired1 {
		t.Errorf("events (%d) != fired (%d)", n1, fired1)
	}
	if !strings.Contains(FormatEvents([]Event{{Comp: "dram-2", Fault: "dram-jitter", Cycle: 1, Arg: 4}}), "dram-jitter") {
		t.Error("FormatEvents lost the fault name")
	}
}
