// Package chaos is a seeded, deterministic fault-injection layer for the
// simulator. It perturbs each subsystem strictly through that subsystem's
// existing interfaces — extra NoC serialization cycles and transient output
// jams (back-pressure), DRAM timing jitter and refresh storms, cache fill
// delays and forced MSHR-exhaustion windows, core issue stalls — plus two
// deliberately destructive drills (a permanent all-output NoC jam and a
// one-shot accounting corruption) that exist to prove the health layer's
// watchdog and invariant audit actually fire.
//
// Every injection decision is a pure function of (seed, component stream id,
// cycle): an Injector holds no mutable PRNG state, it hashes its stream base
// with the queried cycle. Because decisions are drawn only on a component's
// own Tick path — never from producer-side pushes, whose intra-edge order is
// unspecified under sharded execution — the fault schedule is bit-identical
// across shard counts, across the legacy and quiescence engines, and across
// replays of the same (seed, spec).
//
// Two further rules keep the quiescence fast path exact (see sim.Sleeper):
//
//   - Timing faults are only drawn when the component has affected work
//     (a grant to perturb, a fill to delay, a request to stall). A sleeping
//     component draws nothing, and a component with work never sleeps, so the
//     skipped ticks of the fast path never hide a draw the legacy engine
//     would have made.
//   - The one fault that must fire on an otherwise idle component — the
//     corruption drill at a fixed cycle — publishes its cycle through
//     CorruptWake so the component's NextWorkCycle can refuse to sleep past
//     it.
package chaos

import (
	"fmt"
	"sort"
	"strings"

	"dcl1sim/internal/sim"
)

// Kind partitions the PRNG stream space by subsystem, so e.g. core 3 and DRAM
// channel 3 never share a fault schedule.
type Kind uint8

// Subsystem kinds.
const (
	KindCore Kind = iota
	KindL1
	KindL2
	KindNoC
	KindDram
)

// DefaultWindowLen is the fault-window length used when Spec.WindowLen is 0.
// Windowed faults (jams, storms, pinches, issue stalls) are decided once per
// window and occupy its leading cycles.
const DefaultWindowLen sim.Cycle = 64

// Spec configures fault injection. The zero value injects nothing. All
// probabilities are per decision point: per window for the windowed faults,
// per affected event (grant, issue, fill) for the rest.
type Spec struct {
	// Seed selects the whole fault schedule. Two runs with equal (Seed, Spec)
	// produce byte-identical schedules; changing Seed reshuffles everything.
	Seed uint64
	// WindowLen is the length of the windowed faults' decision window in the
	// component's own clock cycles. 0 selects DefaultWindowLen. Windowed
	// durations are clamped to the window, so fault episodes never overlap.
	WindowLen sim.Cycle

	// NoC: per-grant extra serialization cycles (flit delay / duplication —
	// the packet holds its ports longer, exactly as more flits would), and
	// transient per-output jams that exert real back-pressure through the
	// staging queues, VOQs, and injection credits.
	FlitDelayProb float64
	FlitDelayMax  sim.Cycle // extra cycles per perturbed grant, 1..Max
	OutJamProb    float64   // per (output, window)
	OutJamLen     sim.Cycle // leading cycles of the window the output is dead

	// JamAllAfter, when positive, permanently jams every crossbar output from
	// that cycle (local clock) on — a credit-loss deadlock drill for the
	// watchdog. Destructive: never part of the presets.
	JamAllAfter sim.Cycle

	// DRAM: per-issue timing jitter on the data-ready cycle, and windowed
	// refresh storms during which the channel issues no commands (in-flight
	// bursts still complete and replies still drain).
	DramJitterProb float64
	DramJitterMax  sim.Cycle
	StormProb      float64 // per window
	StormLen       sim.Cycle

	// Cache: per-cycle fill-path stalls (fills and store ACKs wait in FillIn)
	// and windowed forced MSHR exhaustion (allocation refused; merges into
	// existing entries still succeed, as in a real full-MSHR episode).
	FillStallProb float64 // per cycle with fills waiting
	MSHRPinchProb float64 // per window
	MSHRPinchLen  sim.Cycle

	// CorruptAt, when positive, bumps each cache controller's In.PushCount at
	// that cycle (local clock) without a matching push — a state-corruption
	// drill that the queue-conservation invariant must catch. Destructive:
	// never part of the presets.
	CorruptAt sim.Cycle

	// Core: windowed issue freezes (the scheduler finds no ready wavefront).
	IssueStallProb float64 // per window
	IssueStallLen  sim.Cycle

	// Record keeps a per-injector event log for schedule comparison and
	// debugging (see Injector.Events / FormatEvents). Off by default: long
	// runs with high fault rates record many events.
	Record bool
}

// Validate reports whether the spec is well-formed.
func (s *Spec) Validate() error {
	if s == nil {
		return nil
	}
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"FlitDelayProb", s.FlitDelayProb}, {"OutJamProb", s.OutJamProb},
		{"DramJitterProb", s.DramJitterProb}, {"StormProb", s.StormProb},
		{"FillStallProb", s.FillStallProb}, {"MSHRPinchProb", s.MSHRPinchProb},
		{"IssueStallProb", s.IssueStallProb},
	} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("chaos: %s = %v outside [0, 1]", p.name, p.v)
		}
	}
	for _, c := range []struct {
		name string
		v    sim.Cycle
	}{
		{"WindowLen", s.WindowLen}, {"FlitDelayMax", s.FlitDelayMax},
		{"OutJamLen", s.OutJamLen}, {"JamAllAfter", s.JamAllAfter},
		{"DramJitterMax", s.DramJitterMax}, {"StormLen", s.StormLen},
		{"MSHRPinchLen", s.MSHRPinchLen}, {"CorruptAt", s.CorruptAt},
		{"IssueStallLen", s.IssueStallLen},
	} {
		if c.v < 0 {
			return fmt.Errorf("chaos: %s = %d is negative", c.name, c.v)
		}
	}
	return nil
}

// Normalized validates the spec and returns a copy with defaults applied and
// windowed durations clamped to the window.
func (s *Spec) Normalized() (*Spec, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	n := *s
	if n.WindowLen <= 0 {
		n.WindowLen = DefaultWindowLen
	}
	clamp := func(d sim.Cycle) sim.Cycle {
		if d > n.WindowLen {
			return n.WindowLen
		}
		return d
	}
	n.OutJamLen = clamp(n.OutJamLen)
	n.StormLen = clamp(n.StormLen)
	n.MSHRPinchLen = clamp(n.MSHRPinchLen)
	n.IssueStallLen = clamp(n.IssueStallLen)
	return &n, nil
}

// Enabled reports whether the spec can inject anything at all.
func (s *Spec) Enabled() bool {
	if s == nil {
		return false
	}
	return s.FlitDelayProb > 0 || s.OutJamProb > 0 || s.JamAllAfter > 0 ||
		s.DramJitterProb > 0 || s.StormProb > 0 ||
		s.FillStallProb > 0 || s.MSHRPinchProb > 0 || s.CorruptAt > 0 ||
		s.IssueStallProb > 0
}

// Light returns a mild all-timing-fault preset: every subsystem sees
// occasional perturbations, none severe enough to wedge a healthy design.
func Light(seed uint64) *Spec {
	return &Spec{
		Seed:          seed,
		FlitDelayProb: 0.02, FlitDelayMax: 3,
		OutJamProb: 0.02, OutJamLen: 16,
		DramJitterProb: 0.05, DramJitterMax: 8,
		StormProb: 0.01, StormLen: 32,
		FillStallProb: 0.02,
		MSHRPinchProb: 0.01, MSHRPinchLen: 16,
		IssueStallProb: 0.01, IssueStallLen: 8,
	}
}

// Heavy returns an aggressive all-timing-fault preset: long jams, frequent
// storms, deep MSHR pinches. Still only timing faults — a correct simulator
// slows down under it but must neither deadlock nor corrupt state.
func Heavy(seed uint64) *Spec {
	return &Spec{
		Seed:          seed,
		FlitDelayProb: 0.15, FlitDelayMax: 8,
		OutJamProb: 0.10, OutJamLen: 48,
		DramJitterProb: 0.20, DramJitterMax: 24,
		StormProb: 0.05, StormLen: 64,
		FillStallProb: 0.10,
		MSHRPinchProb: 0.08, MSHRPinchLen: 32,
		IssueStallProb: 0.05, IssueStallLen: 24,
	}
}

// Preset resolves a preset by name: "off" (or "") disables injection (nil
// spec), "light" and "heavy" select the corresponding preset.
func Preset(name string, seed uint64) (*Spec, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "", "off", "none":
		return nil, nil
	case "light":
		return Light(seed), nil
	case "heavy":
		return Heavy(seed), nil
	default:
		return nil, fmt.Errorf("chaos: unknown preset %q (off, light, heavy)", name)
	}
}

// Event is one recorded fault occurrence: a window activation for windowed
// faults, one perturbation for per-event faults.
type Event struct {
	Comp  string    // component display name
	Fault string    // fault kind, e.g. "out-jam", "dram-jitter"
	Cycle sim.Cycle // local clock cycle (window start for windowed faults)
	Arg   int64     // fault-specific detail (output port, extra cycles, ...)
}

// SortEvents orders events canonically: by cycle, then component, fault, arg.
func SortEvents(evs []Event) {
	sort.Slice(evs, func(i, j int) bool {
		a, b := evs[i], evs[j]
		if a.Cycle != b.Cycle {
			return a.Cycle < b.Cycle
		}
		if a.Comp != b.Comp {
			return a.Comp < b.Comp
		}
		if a.Fault != b.Fault {
			return a.Fault < b.Fault
		}
		return a.Arg < b.Arg
	})
}

// FormatEvents renders a canonical one-line-per-event schedule (sorted copy),
// so two schedules can be compared byte for byte.
func FormatEvents(evs []Event) string {
	sorted := make([]Event, len(evs))
	copy(sorted, evs)
	SortEvents(sorted)
	var b strings.Builder
	for _, e := range sorted {
		fmt.Fprintf(&b, "%d %s %s %d\n", e.Cycle, e.Comp, e.Fault, e.Arg)
	}
	return b.String()
}

// Salt constants separate the fault types within one component's stream.
// Per-output faults fold the output index in on top.
const (
	saltGrant   uint64 = 0xa24baed4963ee407
	saltGrantN  uint64 = 0x9fb21c651e98df25
	saltJam     uint64 = 0x8ebc6af09c88c6e3
	saltJitter  uint64 = 0x589965cc75374cc3
	saltJitterN uint64 = 0x1d8e4e27c47d124f
	saltStorm   uint64 = 0xeb44accab455d165
	saltFill    uint64 = 0x6c9c07a4a0d64bc4
	saltPinch   uint64 = 0x2ffcbc1ad2cd3f91
	saltIssue   uint64 = 0xd985e3ca2a2cc0a5
	outStride   uint64 = 0x9e3779b97f4a7c15
)

// mix is the 64-bit finalizer used as the stream hash (splitmix64/murmur3
// style): full avalanche, so consecutive cycles draw independent-looking
// values from the same stream base.
func mix(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Injector evaluates one component's fault schedule. All methods are safe on
// a nil receiver (no faults), so components carry an optional *Injector field
// and call it unconditionally. The only mutable state is the event log and
// the fired counter — decisions themselves are pure functions of the queried
// cycle, which is what makes the schedule replay- and shard-invariant.
//
// An Injector belongs to exactly one component and must only be called from
// that component's Tick path (the component's own shard), never from
// producer-side pushes.
type Injector struct {
	spec  *Spec
	name  string
	base  uint64
	fired int64
	evs   []Event
	seen  map[uint64]struct{} // dedup for windowed / one-shot events
}

// New builds the injector for one component. spec must already be normalized
// (see Spec.Normalized); kind and id identify the component's PRNG stream and
// name is its display name in the event log.
func New(spec *Spec, kind Kind, id int, name string) *Injector {
	if spec == nil {
		return nil
	}
	base := mix(spec.Seed*0x9e3779b97f4a7c15 ^
		mix(uint64(kind+1)*0xbf58476d1ce4e5b9^uint64(id+1)*0x94d049bb133111eb))
	return &Injector{spec: spec, name: name, base: base, seen: map[uint64]struct{}{}}
}

// draw returns the stream's hash value for (cycle, salt) in [0, 2^64).
func (i *Injector) draw(now sim.Cycle, salt uint64) uint64 {
	return mix(i.base ^ mix(uint64(now)*0x9e3779b97f4a7c15^salt))
}

// hit reports whether the (cycle, salt) draw lands under probability p.
func (i *Injector) hit(p float64, now sim.Cycle, salt uint64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return float64(i.draw(now, salt)>>11)/(1<<53) < p
}

// note counts one fault occurrence and, under Record, logs it.
func (i *Injector) note(fault string, cycle sim.Cycle, arg int64) {
	i.fired++
	if i.spec.Record {
		i.evs = append(i.evs, Event{Comp: i.name, Fault: fault, Cycle: cycle, Arg: arg})
	}
}

// noteOnce is note deduplicated on key: windowed faults are queried every
// cycle of their window (and jams from two call sites), but count once.
func (i *Injector) noteOnce(key uint64, fault string, cycle sim.Cycle, arg int64) {
	if _, ok := i.seen[key]; ok {
		return
	}
	i.seen[key] = struct{}{}
	i.note(fault, cycle, arg)
}

// windowActive decides a windowed fault: the (window, salt) draw activates
// the window, and the fault occupies its first length cycles.
func (i *Injector) windowActive(now sim.Cycle, p float64, length sim.Cycle, salt uint64, fault string, arg int64) bool {
	if p <= 0 || length <= 0 {
		return false
	}
	start := now - now%i.spec.WindowLen
	if now-start >= length {
		return false
	}
	if !i.hit(p, start, salt) {
		return false
	}
	i.noteOnce(salt^uint64(start)*0xbf58476d1ce4e5b9, fault, start, arg)
	return true
}

// GrantPerturb returns extra serialization cycles for a crossbar grant on
// output out (0 when unperturbed): the packet holds its input and output
// ports longer, exactly as a duplicated or delayed flit would.
func (i *Injector) GrantPerturb(now sim.Cycle, out int, flits int) sim.Cycle {
	if i == nil || i.spec.FlitDelayProb <= 0 || i.spec.FlitDelayMax <= 0 {
		return 0
	}
	salt := saltGrant + uint64(out)*outStride
	if !i.hit(i.spec.FlitDelayProb, now, salt) {
		return 0
	}
	extra := 1 + sim.Cycle(i.draw(now, saltGrantN+uint64(out)*outStride)%uint64(i.spec.FlitDelayMax))
	i.note("flit-delay", now, int64(extra))
	return extra
}

// OutputJammed reports whether crossbar output out accepts no grant and
// delivers no staged packet this cycle — either a transient per-window jam or
// the permanent JamAllAfter drill.
func (i *Injector) OutputJammed(now sim.Cycle, out int) bool {
	if i == nil {
		return false
	}
	if i.spec.JamAllAfter > 0 && now >= i.spec.JamAllAfter {
		i.noteOnce(^uint64(out), "jam-all", now, int64(out))
		return true
	}
	return i.windowActive(now, i.spec.OutJamProb, i.spec.OutJamLen,
		saltJam+uint64(out)*outStride, "out-jam", int64(out))
}

// DramJitter returns extra cycles added to an issued command's data-ready
// time (0 when unperturbed).
func (i *Injector) DramJitter(now sim.Cycle) sim.Cycle {
	if i == nil || i.spec.DramJitterProb <= 0 || i.spec.DramJitterMax <= 0 {
		return 0
	}
	if !i.hit(i.spec.DramJitterProb, now, saltJitter) {
		return 0
	}
	extra := 1 + sim.Cycle(i.draw(now, saltJitterN)%uint64(i.spec.DramJitterMax))
	i.note("dram-jitter", now, int64(extra))
	return extra
}

// RefreshStorm reports whether the channel issues no commands this cycle.
func (i *Injector) RefreshStorm(now sim.Cycle) bool {
	if i == nil {
		return false
	}
	return i.windowActive(now, i.spec.StormProb, i.spec.StormLen, saltStorm, "refresh-storm", 0)
}

// FillsBlocked reports whether the cache's fill path stalls this cycle.
func (i *Injector) FillsBlocked(now sim.Cycle) bool {
	if i == nil {
		return false
	}
	if !i.hit(i.spec.FillStallProb, now, saltFill) {
		return false
	}
	i.note("fill-stall", now, 0)
	return true
}

// MSHRPinched reports whether MSHR allocation is refused this cycle (forced
// exhaustion window). Merges into existing entries are unaffected.
func (i *Injector) MSHRPinched(now sim.Cycle) bool {
	if i == nil {
		return false
	}
	return i.windowActive(now, i.spec.MSHRPinchProb, i.spec.MSHRPinchLen, saltPinch, "mshr-pinch", 0)
}

// IssueStalled reports whether the core's issue stage freezes this cycle.
func (i *Injector) IssueStalled(now sim.Cycle) bool {
	if i == nil {
		return false
	}
	return i.windowActive(now, i.spec.IssueStallProb, i.spec.IssueStallLen, saltIssue, "issue-stall", 0)
}

// CorruptNow reports whether the corruption drill fires this cycle. The
// component ticks a given cycle at most once, so the drill fires at most once
// per component.
func (i *Injector) CorruptNow(now sim.Cycle) bool {
	if i == nil || i.spec.CorruptAt <= 0 || now != i.spec.CorruptAt {
		return false
	}
	i.note("corrupt", now, 0)
	return true
}

// CorruptWake returns the pending corruption cycle so the component's
// NextWorkCycle can refuse to sleep past it (ok is false once the drill is
// behind now or disabled).
func (i *Injector) CorruptWake(now sim.Cycle) (sim.Cycle, bool) {
	if i == nil || i.spec.CorruptAt <= 0 || now > i.spec.CorruptAt {
		return 0, false
	}
	return i.spec.CorruptAt, true
}

// Fired returns the number of fault occurrences so far (windowed faults count
// once per activated window).
func (i *Injector) Fired() int64 {
	if i == nil {
		return 0
	}
	return i.fired
}

// Events returns the recorded event log (empty unless Spec.Record).
func (i *Injector) Events() []Event {
	if i == nil {
		return nil
	}
	return i.evs
}
