package metrics

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// promPrefix namespaces every exposed family.
const promPrefix = "dcl1_"

// WriteProm renders one or more batches in the Prometheus text exposition
// format (version 0.0.4). Families are emitted in sorted order with one
// # TYPE line each; samples carry design/app/component/domain labels, so
// several designs' batches (one sweep job) can share one scrape page.
// Histograms are exposed as summaries with interpolated 0.5/0.99 quantiles.
func WriteProm(w io.Writer, batches ...*Batch) error {
	type ref struct {
		b *Batch
		i int
	}
	byFamily := map[string][]ref{}
	var families []string
	for _, b := range batches {
		if b == nil {
			continue
		}
		for i := range b.Samples {
			_, _, name := SplitID(b.Samples[i].ID)
			if _, ok := byFamily[name]; !ok {
				families = append(families, name)
			}
			byFamily[name] = append(byFamily[name], ref{b, i})
		}
	}
	sort.Strings(families)
	for _, fam := range families {
		refs := byFamily[fam]
		kind := refs[0].b.Samples[refs[0].i].Kind
		if _, err := fmt.Fprintf(w, "# TYPE %s%s %s\n", promPrefix, fam, kind); err != nil {
			return err
		}
		for _, r := range refs {
			s := &r.b.Samples[r.i]
			comp, domain, _ := SplitID(s.ID)
			labels := promLabels(r.b.Design, r.b.App, comp, domain)
			switch s.Kind {
			case KindHistogram:
				fmt.Fprintf(w, "%s%s{%s,quantile=\"0.5\"} %d\n", promPrefix, fam, labels, s.P50)
				fmt.Fprintf(w, "%s%s{%s,quantile=\"0.99\"} %d\n", promPrefix, fam, labels, s.P99)
				fmt.Fprintf(w, "%s%s_sum{%s} %d\n", promPrefix, fam, labels, s.Sum)
				if _, err := fmt.Fprintf(w, "%s%s_count{%s} %d\n", promPrefix, fam, labels, s.Count); err != nil {
					return err
				}
			default:
				if _, err := fmt.Fprintf(w, "%s%s{%s} %s\n",
					promPrefix, fam, labels, formatPromValue(s.Value)); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func promLabels(design, app, comp, domain string) string {
	if mod, rest, ok := splitModuleComp(comp); ok {
		return fmt.Sprintf("design=%q,app=%q,component=%q,domain=%q,module=%q",
			promEscape(design), promEscape(app), promEscape(rest), promEscape(domain), mod)
	}
	return fmt.Sprintf("design=%q,app=%q,component=%q,domain=%q",
		promEscape(design), promEscape(app), promEscape(comp), promEscape(domain))
}

// splitModuleComp recognizes the "m<N>." component prefix multi-GPU machines
// stamp on every per-module component (see gpu.Machine) and splits it into
// the module label and the bare component name. Components without the
// prefix — single-module runs and machine-level parts like the inter-module
// link — carry no module label.
func splitModuleComp(comp string) (module, rest string, ok bool) {
	if len(comp) < 3 || comp[0] != 'm' {
		return "", "", false
	}
	i := 1
	for i < len(comp) && comp[i] >= '0' && comp[i] <= '9' {
		i++
	}
	if i == 1 || i == len(comp) || comp[i] != '.' || i+1 == len(comp) {
		return "", "", false
	}
	return comp[:i], comp[i+1:], true
}

func promEscape(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	r := strings.NewReplacer("\\", "\\\\", "\"", "\\\"", "\n", "\\n")
	return r.Replace(s)
}

func formatPromValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// LintProm validates a text exposition page against the subset of the
// Prometheus 0.0.4 format this package emits, strictly enough to catch
// format regressions in CI: metric and label names must be legal, every
// sample's family must be typed by a preceding # TYPE line, a family must
// not be typed twice, label values must be properly quoted, values must be
// floats, and no two samples may share an identical name + label set.
func LintProm(r io.Reader) error {
	data, err := io.ReadAll(r)
	if err != nil {
		return err
	}
	typed := map[string]string{}
	seen := map[string]bool{}
	lines := strings.Split(string(data), "\n")
	for ln, line := range lines {
		n := ln + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || (fields[1] != "TYPE" && fields[1] != "HELP") {
				return fmt.Errorf("prom lint: line %d: malformed comment %q", n, line)
			}
			if !validMetricName(fields[2]) {
				return fmt.Errorf("prom lint: line %d: bad metric name %q", n, fields[2])
			}
			if fields[1] == "TYPE" {
				if len(fields) != 4 {
					return fmt.Errorf("prom lint: line %d: TYPE needs a type", n)
				}
				switch fields[3] {
				case "counter", "gauge", "summary", "histogram", "untyped":
				default:
					return fmt.Errorf("prom lint: line %d: unknown type %q", n, fields[3])
				}
				if _, dup := typed[fields[2]]; dup {
					return fmt.Errorf("prom lint: line %d: family %s typed twice", n, fields[2])
				}
				typed[fields[2]] = fields[3]
			}
			continue
		}
		name, rest, err := splitPromName(line)
		if err != nil {
			return fmt.Errorf("prom lint: line %d: %v", n, err)
		}
		fam := name
		if typ, ok := typed[fam]; !ok || typ == "" {
			for _, suffix := range []string{"_sum", "_count", "_bucket"} {
				if strings.HasSuffix(name, suffix) {
					if _, ok := typed[strings.TrimSuffix(name, suffix)]; ok {
						fam = strings.TrimSuffix(name, suffix)
					}
				}
			}
		}
		if _, ok := typed[fam]; !ok {
			return fmt.Errorf("prom lint: line %d: sample %s has no preceding # TYPE", n, name)
		}
		labels, value, err := splitPromLabels(rest)
		if err != nil {
			return fmt.Errorf("prom lint: line %d: %v", n, err)
		}
		if _, err := strconv.ParseFloat(value, 64); err != nil {
			return fmt.Errorf("prom lint: line %d: bad value %q", n, value)
		}
		key := name + "{" + labels + "}"
		if seen[key] {
			return fmt.Errorf("prom lint: line %d: duplicate series %s", n, key)
		}
		seen[key] = true
	}
	if len(typed) == 0 {
		return fmt.Errorf("prom lint: no metric families in page")
	}
	return nil
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		ok := c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// splitPromName splits a sample line into the metric name and the remainder
// (label block and value).
func splitPromName(line string) (name, rest string, err error) {
	i := strings.IndexAny(line, "{ ")
	if i < 0 {
		return "", "", fmt.Errorf("sample without value: %q", line)
	}
	name = line[:i]
	if !validMetricName(name) {
		return "", "", fmt.Errorf("bad metric name %q", name)
	}
	return name, line[i:], nil
}

// splitPromLabels validates the label block (if any) and returns the
// canonical label string plus the sample value.
func splitPromLabels(rest string) (labels, value string, err error) {
	if !strings.HasPrefix(rest, "{") {
		return "", strings.TrimSpace(rest), nil
	}
	end := -1
	inQuote := false
	for i := 1; i < len(rest); i++ {
		switch {
		case inQuote && rest[i] == '\\':
			i++
		case rest[i] == '"':
			inQuote = !inQuote
		case !inQuote && rest[i] == '}':
			end = i
		}
		if end >= 0 {
			break
		}
	}
	if end < 0 {
		return "", "", fmt.Errorf("unterminated label block")
	}
	block := rest[1:end]
	if block != "" {
		for _, pair := range splitLabelPairs(block) {
			k, v, ok := strings.Cut(pair, "=")
			if !ok || !validLabelName(k) {
				return "", "", fmt.Errorf("bad label pair %q", pair)
			}
			if len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
				return "", "", fmt.Errorf("unquoted label value in %q", pair)
			}
		}
	}
	return block, strings.TrimSpace(rest[end+1:]), nil
}

// splitLabelPairs splits k1="v1",k2="v2" on commas outside quotes.
func splitLabelPairs(block string) []string {
	var out []string
	start := 0
	inQuote := false
	for i := 0; i < len(block); i++ {
		switch {
		case inQuote && block[i] == '\\':
			i++
		case block[i] == '"':
			inQuote = !inQuote
		case !inQuote && block[i] == ',':
			out = append(out, block[start:i])
			start = i + 1
		}
	}
	return append(out, block[start:])
}
