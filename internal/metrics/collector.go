package metrics

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
)

// DefaultEvery is the default sampling period in core cycles.
const DefaultEvery = 4096

// Options configures live metrics collection for one run.
type Options struct {
	// Every is the sampling period in core-clock cycles (0 selects
	// DefaultEvery). Samples land exactly on multiples of Every from the
	// start of the run, in every tick mode and at every shard count.
	Every int64
	// Sink receives each snapshot batch, on the engine goroutine, in cycle
	// order. The batch is reused: Emit must serialize or copy (Batch.Clone)
	// anything it keeps. A nil Sink still drives registered fold hooks (the
	// power governor works without an observer).
	Sink Sink
}

// Sink consumes snapshot batches. Emit runs on the engine goroutine between
// clock edges; slow sinks slow the simulation, never corrupt it.
type Sink interface {
	Emit(b *Batch)
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(b *Batch)

// Emit calls f.
func (f SinkFunc) Emit(b *Batch) { f(b) }

// Sharder runs a function once per execution shard, concurrently when the
// caller has shard workers and serially (f(0, 1)) otherwise. *sim.Clock
// implements it: from a barrier task the engine's shard workers execute f in
// parallel, which is how the collector spreads the registry walk.
type Sharder interface {
	RunSharded(f func(shard, shards int))
}

// Collector samples a registry at fixed cycle intervals. It is registered on
// the core clock as a ticker whose NextWorkCycle is the next sample point,
// which bounds the engine's idle fast-forward so sample cycles are never
// skipped — the sample grid is identical in fast-path, legacy-tick, and
// sharded execution. Tick only marks the pending sample; the actual registry
// walk happens in a barrier task (serial, after port commits), so sampling
// is race-free at any shard count.
type Collector struct {
	reg    *Registry
	every  int64
	next   int64
	sink   Sink
	timeOf func(cycle int64) int64

	// hooks run at every sample point, before the snapshot, in registration
	// order (the power meter advances first, then the governor steps).
	hooks []func(cycle int64)

	pending bool
	at      int64 // cycle the pending sample was marked on
	batch   Batch
	sharder Sharder
}

// NewCollector builds a collector over reg. design and app label every
// batch; every is the sampling period (0 = DefaultEvery).
func NewCollector(reg *Registry, design, app string, every int64, sink Sink) *Collector {
	if every <= 0 {
		every = DefaultEvery
	}
	c := &Collector{reg: reg, every: every, next: every, sink: sink}
	c.timeOf = func(int64) int64 { return 0 }
	c.batch.Design = design
	c.batch.App = app
	return c
}

// SetTimeFunc installs the cycle→picosecond conversion used to stamp
// batches. The owner passes the exact integer arithmetic of its clock so
// batch timestamps can never drift from engine time.
func (c *Collector) SetTimeFunc(fn func(cycle int64) int64) { c.timeOf = fn }

// OnSample registers a hook to run at each sample point before the registry
// is read. Hooks run serially on the engine goroutine.
func (c *Collector) OnSample(fn func(cycle int64)) { c.hooks = append(c.hooks, fn) }

// SetSharder installs the shard fan-out used to fill snapshot batches. With a
// sharder the registry walk is split across the engine's shard workers
// (partial strided fills folded into one batch at the barrier); without one
// it stays a serial walk. The resulting batch is identical either way.
func (c *Collector) SetSharder(s Sharder) { c.sharder = s }

// Tick marks the sample pending when the clock reaches the next sample
// cycle. It runs inside the edge (possibly on a shard goroutine, but the
// collector is always alone in its shard slot and touches only its own
// fields).
func (c *Collector) Tick(now int64) {
	if now >= c.next {
		c.pending = true
		c.at = now
		c.next = now + c.every
	}
}

// NextWorkCycle returns the next sample cycle, bounding idle fast-forward so
// the engine never skips over a sample point.
func (c *Collector) NextWorkCycle(now int64) int64 { return c.next }

// Fold takes the pending snapshot, if any, stamped with the cycle the sample
// was marked on. It must be called from a barrier task of the collector's
// clock: barriers run serially after the edge's port commits, so the
// snapshot observes a consistent post-edge state at any shard count.
func (c *Collector) Fold() {
	if !c.pending {
		return
	}
	c.pending = false
	c.emit(c.at, c.timeOf(c.at), false)
}

// Flush emits one final batch unconditionally (end of run).
func (c *Collector) Flush(cycle int64) {
	c.pending = false
	c.emit(cycle, c.timeOf(cycle), true)
}

func (c *Collector) emit(cycle, timePs int64, final bool) {
	for _, fn := range c.hooks {
		fn(cycle)
	}
	if c.sink == nil {
		return
	}
	if c.sharder != nil {
		c.reg.PrepareSample(&c.batch)
		c.sharder.RunSharded(func(shard, shards int) {
			c.reg.SampleShard(&c.batch, shard, shards)
		})
	} else {
		c.reg.Sample(&c.batch)
	}
	c.batch.Cycle = cycle
	c.batch.TimePs = timePs
	c.batch.Final = final
	c.sink.Emit(&c.batch)
}

// NDJSONSink streams each batch as one JSON line. It is safe for sequential
// use from the engine goroutine; Close flushes buffered output.
type NDJSONSink struct {
	mu  sync.Mutex
	bw  *bufio.Writer
	enc *json.Encoder
	err error
}

// NewNDJSONSink wraps w in a buffered NDJSON batch writer.
func NewNDJSONSink(w io.Writer) *NDJSONSink {
	bw := bufio.NewWriter(w)
	return &NDJSONSink{bw: bw, enc: json.NewEncoder(bw)}
}

// Emit writes the batch as one JSON line; the first error sticks.
func (s *NDJSONSink) Emit(b *Batch) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	s.err = s.enc.Encode(b)
}

// Close flushes the buffer and returns the first write error.
func (s *NDJSONSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	return s.bw.Flush()
}
