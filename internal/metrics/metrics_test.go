package metrics

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"dcl1sim/internal/stats"
)

func testRegistry(counter *int64, gauge *float64, hist *stats.Histogram) *Registry {
	r := NewRegistry()
	r.Counter("core-0", "core", "widgets_total", "widgets made", func() int64 { return *counter })
	r.Counter("core-1", "core", "widgets_total", "widgets made", func() int64 { return 2 * *counter })
	r.Gauge("core-0", "core", "pressure", "instantaneous pressure", func() float64 { return *gauge })
	r.Histogram("core-0", "core", "latency_cycles", "request latency", hist)
	return r
}

func TestRegistryAccessors(t *testing.T) {
	counter, gauge := int64(10), 2.5
	var h stats.Histogram
	h.Add(3)
	h.Add(5)
	r := testRegistry(&counter, &gauge, &h)

	if got := r.Total("widgets_total"); got != 30 {
		t.Errorf("Total = %d, want 30", got)
	}
	if got := r.Ints("widgets_total"); len(got) != 2 || got[0] != 10 || got[1] != 20 {
		t.Errorf("Ints = %v, want [10 20]", got)
	}
	if got := r.GaugeMax("pressure"); got != 2.5 {
		t.Errorf("GaugeMax = %g, want 2.5", got)
	}
	if got := r.GaugeMax("no_such_family"); got != 0 {
		t.Errorf("GaugeMax of empty family = %g, want 0", got)
	}
	m := r.MergedHistogram("latency_cycles")
	if m.Count() != 2 || m.Sum() != 8 {
		t.Errorf("MergedHistogram count=%d sum=%d, want 2/8", m.Count(), m.Sum())
	}
}

func TestRegistryDuplicateIDPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("c", "core", "x_total", "", func() int64 { return 0 })
	defer func() {
		if recover() == nil {
			t.Fatal("registering a duplicate series ID did not panic")
		}
	}()
	r.Counter("c", "core", "x_total", "", func() int64 { return 0 })
}

func TestSampleReusesBatch(t *testing.T) {
	counter, gauge := int64(1), 1.0
	var h stats.Histogram
	r := testRegistry(&counter, &gauge, &h)

	var b Batch
	r.Sample(&b)
	if len(b.Samples) != r.Len() {
		t.Fatalf("sampled %d series, registry has %d", len(b.Samples), r.Len())
	}
	first := &b.Samples[0]
	counter = 7
	r.Sample(&b)
	if &b.Samples[0] != first {
		t.Error("Sample reallocated the samples slice on resample")
	}
	if got := b.Samples[0].Value; got != 7 {
		t.Errorf("resampled counter value = %g, want 7", got)
	}
}

// TestCollectorGrid pins the sample grid contract: samples land exactly on
// multiples of Every regardless of which cycles Tick observes, Fold emits at
// most one pending sample, and Flush stamps the final batch.
func TestCollectorGrid(t *testing.T) {
	counter, gauge := int64(0), 0.0
	var h stats.Histogram
	r := testRegistry(&counter, &gauge, &h)

	var cycles []int64
	var finals []bool
	sink := SinkFunc(func(b *Batch) {
		cycles = append(cycles, b.Cycle)
		finals = append(finals, b.Final)
	})
	c := NewCollector(r, "D", "A", 100, sink)
	c.SetTimeFunc(func(cyc int64) int64 { return cyc * 2 })

	// Simulate a fast-forwarding engine: ticks only on a sparse set of
	// cycles, but never past NextWorkCycle — exactly the engine's contract.
	now := int64(0)
	for now < 450 {
		step := int64(7)
		if next := c.NextWorkCycle(now); now+step > next {
			step = next - now
		}
		now += step
		c.Tick(now)
		c.Fold()
	}
	c.Flush(450)

	want := []int64{100, 200, 300, 400, 450}
	if len(cycles) != len(want) {
		t.Fatalf("got batches at %v, want %v", cycles, want)
	}
	for i := range want {
		if cycles[i] != want[i] {
			t.Fatalf("got batches at %v, want %v", cycles, want)
		}
		if isFinal := i == len(want)-1; finals[i] != isFinal {
			t.Errorf("batch %d final=%v", i, finals[i])
		}
	}
}

// TestCollectorFoldWithoutPending pins that barrier folds between sample
// points emit nothing, and that hooks run even with a nil sink (the power
// governor must step without an observer).
func TestCollectorHooksWithNilSink(t *testing.T) {
	counter, gauge := int64(0), 0.0
	var h stats.Histogram
	r := testRegistry(&counter, &gauge, &h)

	c := NewCollector(r, "D", "A", 10, nil)
	var hookCycles []int64
	c.OnSample(func(cycle int64) { hookCycles = append(hookCycles, cycle) })
	for now := int64(1); now <= 25; now++ {
		c.Tick(now)
		c.Fold()
	}
	if len(hookCycles) != 2 || hookCycles[0] != 10 || hookCycles[1] != 20 {
		t.Errorf("hook cycles = %v, want [10 20]", hookCycles)
	}
}

// TestCollectorSteadyStateAllocs pins the near-zero-cost claim: after the
// first emission sized the batch, the tick→fold→emit cycle must not allocate.
func TestCollectorSteadyStateAllocs(t *testing.T) {
	counter, gauge := int64(0), 0.0
	var h stats.Histogram
	r := testRegistry(&counter, &gauge, &h)
	c := NewCollector(r, "D", "A", 1, SinkFunc(func(*Batch) {}))

	now := int64(0)
	step := func() {
		now++
		c.Tick(now)
		c.Fold()
	}
	step() // first emit allocates the sample slice
	if avg := testing.AllocsPerRun(1000, step); avg > 0.01 {
		t.Errorf("steady-state sampling allocates %.2f allocs/sample, want ~0", avg)
	}
}

func TestNDJSONSinkRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	s := NewNDJSONSink(&buf)
	b := &Batch{Design: "D", App: "A", Cycle: 5, Samples: []Sample{{ID: "c/core/x_total", Value: 3}}}
	s.Emit(b)
	b.Cycle = 10
	s.Emit(b)
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	sc := bufio.NewScanner(&buf)
	var got []Batch
	for sc.Scan() {
		var d Batch
		if err := json.Unmarshal(sc.Bytes(), &d); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		got = append(got, d)
	}
	if len(got) != 2 || got[0].Cycle != 5 || got[1].Cycle != 10 {
		t.Fatalf("round-tripped batches: %+v", got)
	}
	if got[0].Samples[0].ID != "c/core/x_total" {
		t.Fatalf("round-tripped sample: %+v", got[0].Samples)
	}
}

// TestWritePromLints renders a mixed-kind batch pair and runs the exposition
// through the CI linter.
func TestWritePromLints(t *testing.T) {
	counter, gauge := int64(42), 1.25
	var h stats.Histogram
	h.Add(4)
	h.Add(9)
	r := testRegistry(&counter, &gauge, &h)

	var b1, b2 Batch
	b1.Design, b1.App = "Baseline", "C-BFS"
	r.Sample(&b1)
	b2.Design, b2.App = "Sh40+C10+Boost", "C-BFS"
	r.Sample(&b2)

	var page bytes.Buffer
	if err := WriteProm(&page, &b1, &b2); err != nil {
		t.Fatalf("WriteProm: %v", err)
	}
	text := page.String()
	for _, want := range []string{
		"# TYPE dcl1_widgets_total counter",
		"# TYPE dcl1_pressure gauge",
		"# TYPE dcl1_latency_cycles summary",
		`design="Baseline"`,
		`design="Sh40+C10+Boost"`,
		"dcl1_latency_cycles_count{",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
	if err := LintProm(strings.NewReader(text)); err != nil {
		t.Errorf("LintProm rejected our own exposition: %v\n%s", err, text)
	}
}

// TestLintPromRejects spot-checks that the linter actually catches the
// regressions CI relies on it for.
func TestLintPromRejects(t *testing.T) {
	cases := map[string]string{
		"untyped sample":   "dcl1_x_total 1\n",
		"bad value":        "# TYPE dcl1_x counter\ndcl1_x notanumber\n",
		"duplicate series": "# TYPE dcl1_x counter\ndcl1_x{a=\"b\"} 1\ndcl1_x{a=\"b\"} 2\n",
		"double type":      "# TYPE dcl1_x counter\n# TYPE dcl1_x gauge\n",
		"unquoted label":   "# TYPE dcl1_x counter\ndcl1_x{a=b} 1\n",
		"empty page":       "\n",
	}
	for name, page := range cases {
		if err := LintProm(strings.NewReader(page)); err == nil {
			t.Errorf("%s: lint accepted %q", name, page)
		}
	}
}

// TestPromModuleLabel checks the exposition derives a module label from the
// "m<N>." component prefix multi-GPU machines stamp on per-module series,
// and leaves unprefixed (single-module and machine-level) components alone.
func TestPromModuleLabel(t *testing.T) {
	b := Batch{Design: "Sh4+M2", App: "A", Samples: []Sample{
		{ID: "m0.core-0/core/x_total", Kind: KindCounter, Value: 1},
		{ID: "m12.l2-3/cache/x_total", Kind: KindCounter, Value: 2},
		{ID: "link-req/link/x_total", Kind: KindCounter, Value: 3},
		{ID: "mesh-req/noc/x_total", Kind: KindCounter, Value: 4},
	}}
	var page bytes.Buffer
	if err := WriteProm(&page, &b); err != nil {
		t.Fatalf("WriteProm: %v", err)
	}
	text := page.String()
	for _, want := range []string{
		`component="core-0",domain="core",module="m0"`,
		`component="l2-3",domain="cache",module="m12"`,
		`component="link-req",domain="link"} `,
		`component="mesh-req",domain="noc"} `,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
	if strings.Contains(text, `component="mesh-req",domain="noc",module=`) {
		t.Errorf("mesh-req wrongly gained a module label:\n%s", text)
	}
	if err := LintProm(strings.NewReader(text)); err != nil {
		t.Errorf("LintProm rejected module-labelled exposition: %v\n%s", err, text)
	}
}

// TestSplitModuleComp pins the prefix grammar: "m" + digits + "." + rest.
func TestSplitModuleComp(t *testing.T) {
	cases := []struct {
		comp, module, rest string
		ok                 bool
	}{
		{"m0.core-0", "m0", "core-0", true},
		{"m7.l1-12", "m7", "l1-12", true},
		{"m10.tracker", "m10", "tracker", true},
		{"core-0", "", "", false},
		{"mesh-req", "", "", false},
		{"m.x", "", "", false},
		{"m0.", "", "", false},
		{"m0", "", "", false},
		{"x0.y", "", "", false},
	}
	for _, c := range cases {
		mod, rest, ok := splitModuleComp(c.comp)
		if mod != c.module || rest != c.rest || ok != c.ok {
			t.Errorf("splitModuleComp(%q) = (%q, %q, %v), want (%q, %q, %v)",
				c.comp, mod, rest, ok, c.module, c.rest, c.ok)
		}
	}
}
