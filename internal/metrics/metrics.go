// Package metrics is the simulator's streaming-measurement layer: components
// register typed series (counters, gauges, histograms) under stable
// component/clock-domain/name identifiers at build time, and a collector
// samples the whole registry at deterministic cycle points, feeding live
// sinks (NDJSON dumps, the dcl1serve Prometheus endpoint) and control loops
// (the power-capping governor).
//
// The design constraints, in order:
//
//   - Determinism. Registration happens during system build, so series order
//     is the build order — identical for identical configurations. Sampling
//     happens only inside clock-barrier tasks, which run serially on the
//     engine goroutine after port commits, so a snapshot is race-free at any
//     shard count and lands on the same cycles in fast-path, legacy-tick,
//     and sharded execution.
//
//   - Zero cost when dark. Series are closures over fields the components
//     already maintain; registering them adds no work to tick paths. Without
//     a collector attached nothing is ever sampled.
//
//   - No retention. Snapshot buffers are reused; sinks must copy (or
//     serialize) during Emit. Batch.Clone exists for sinks that keep state.
package metrics

import (
	"fmt"
	"sort"
	"strings"

	"dcl1sim/internal/stats"
)

// Kind discriminates series types.
type Kind uint8

const (
	// KindCounter is a monotonically non-decreasing cumulative count.
	KindCounter Kind = iota
	// KindGauge is an instantaneous level that can move both ways.
	KindGauge
	// KindHistogram is a log2-bucketed sample distribution (stats.Histogram),
	// exposed as count/sum plus interpolated p50/p99.
	KindHistogram
)

// String returns the Prometheus-facing type name.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	default:
		return "summary"
	}
}

// MarshalJSON writes the kind's wire name ("counter", "gauge", "histogram")
// so NDJSON streams are self-describing rather than carrying a bare enum.
func (k Kind) MarshalJSON() ([]byte, error) {
	switch k {
	case KindGauge:
		return []byte(`"gauge"`), nil
	case KindHistogram:
		return []byte(`"histogram"`), nil
	default:
		return []byte(`"counter"`), nil
	}
}

// UnmarshalJSON accepts the wire names, plus bare enum integers for streams
// written before the names existed.
func (k *Kind) UnmarshalJSON(b []byte) error {
	switch string(b) {
	case `"counter"`, "0":
		*k = KindCounter
	case `"gauge"`, "1":
		*k = KindGauge
	case `"histogram"`, "2":
		*k = KindHistogram
	default:
		return fmt.Errorf("metrics: unknown series kind %s", b)
	}
	return nil
}

// Series is one registered metric stream. Exactly one of Int, Float, or Hist
// is set, matching Kind. The sampling closures are read only from clock
// barriers (serially); they must be cheap and must not allocate.
type Series struct {
	// Comp identifies the component instance ("core-3", "l1-0", "mc-7").
	Comp string
	// Domain is the clock domain the component ticks in ("core", "noc1",
	// "noc2", "mem").
	Domain string
	// Name is the family name, snake_case with a unit suffix
	// ("core_instructions_total", "power_zone_watts").
	Name string
	// Help is a one-line description for exposition.
	Help string

	Kind  Kind
	Int   func() int64
	Float func() float64
	Hist  *stats.Histogram

	id string // Comp + "/" + Domain + "/" + Name, precomputed
}

// ID returns the stable series identifier component/domain/name.
func (s *Series) ID() string { return s.id }

// Registry holds the build-time series list. It is populated while a system
// is wired (single goroutine) and read only from barrier tasks afterwards,
// so it needs no locking. Registration order is the deterministic sample
// order.
type Registry struct {
	series []*Series
	ids    map[string]struct{}

	// byName indexes series by family name, built lazily on the first family
	// query and invalidated by add. It turns the end-of-run collect walk (a
	// few dozen family queries) from O(families × series) into O(series +
	// touched members).
	byName map[string][]*Series
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{ids: make(map[string]struct{})}
}

func (r *Registry) add(s *Series) {
	s.id = s.Comp + "/" + s.Domain + "/" + s.Name
	if _, dup := r.ids[s.id]; dup {
		panic(fmt.Sprintf("metrics: duplicate series %q", s.id))
	}
	r.ids[s.id] = struct{}{}
	r.series = append(r.series, s)
	r.byName = nil
}

// family returns the series registered under name, in registration order.
func (r *Registry) family(name string) []*Series {
	if r.byName == nil {
		r.byName = make(map[string][]*Series)
		for _, s := range r.series {
			r.byName[s.Name] = append(r.byName[s.Name], s)
		}
	}
	return r.byName[name]
}

// Counter registers a cumulative counter sampled through fn.
func (r *Registry) Counter(comp, domain, name, help string, fn func() int64) {
	r.add(&Series{Comp: comp, Domain: domain, Name: name, Help: help, Kind: KindCounter, Int: fn})
}

// Gauge registers an instantaneous level sampled through fn.
func (r *Registry) Gauge(comp, domain, name, help string, fn func() float64) {
	r.add(&Series{Comp: comp, Domain: domain, Name: name, Help: help, Kind: KindGauge, Float: fn})
}

// Histogram registers a live histogram; snapshots read it in place.
func (r *Registry) Histogram(comp, domain, name, help string, h *stats.Histogram) {
	r.add(&Series{Comp: comp, Domain: domain, Name: name, Help: help, Kind: KindHistogram, Hist: h})
}

// Len returns the number of registered series.
func (r *Registry) Len() int { return len(r.series) }

// Series returns the registered series in registration order. The slice is
// shared; callers must not mutate it.
func (r *Registry) Series() []*Series { return r.series }

// Total sums every counter registered under the family name.
func (r *Registry) Total(name string) int64 {
	var sum int64
	for _, s := range r.family(name) {
		if s.Kind == KindCounter {
			sum += s.Int()
		}
	}
	return sum
}

// Ints returns the values of every counter family member in registration
// order (one per registered component). It allocates and is meant for
// end-of-run views, not sampling paths.
func (r *Registry) Ints(name string) []int64 {
	var out []int64
	for _, s := range r.family(name) {
		if s.Kind == KindCounter {
			out = append(out, s.Int())
		}
	}
	return out
}

// GaugeMax returns the maximum current value over the gauge family, or 0
// when the family is empty.
func (r *Registry) GaugeMax(name string) float64 {
	m := 0.0
	for _, s := range r.family(name) {
		if s.Kind == KindGauge {
			if v := s.Float(); v > m {
				m = v
			}
		}
	}
	return m
}

// MergedHistogram folds every histogram family member into one distribution.
func (r *Registry) MergedHistogram(name string) stats.Histogram {
	var h stats.Histogram
	for _, s := range r.family(name) {
		if s.Kind == KindHistogram {
			h.Merge(s.Hist)
		}
	}
	return h
}

// Sample evaluates every series into b, reusing its buffers. Callers own b
// and must not hold references across calls. Sample runs only on the engine
// goroutine (barrier context), so it takes no locks.
func (r *Registry) Sample(b *Batch) {
	r.PrepareSample(b)
	r.SampleShard(b, 0, 1)
}

// PrepareSample sizes b's buffers for one full snapshot without evaluating
// any series. It must run once (serially) before SampleShard calls.
func (r *Registry) PrepareSample(b *Batch) {
	if cap(b.Samples) < len(r.series) {
		b.Samples = make([]Sample, len(r.series))
	}
	b.Samples = b.Samples[:len(r.series)]
}

// SampleShard evaluates the series at indices shard, shard+n, shard+2n, ...
// into a batch prepared by PrepareSample. Disjoint shards touch disjoint
// batch slots and disjoint series closures (each closure reads only its own
// component's fields), so n calls with distinct shard values may run
// concurrently — that is how the collector folds a snapshot across the
// engine's shard workers. The filled batch is identical to Sample's for any
// n.
func (r *Registry) SampleShard(b *Batch, shard, n int) {
	for i := shard; i < len(r.series); i += n {
		s := r.series[i]
		out := &b.Samples[i]
		out.ID = s.id
		out.Kind = s.Kind
		out.Count, out.Sum, out.P50, out.P99 = 0, 0, 0, 0
		switch s.Kind {
		case KindCounter:
			out.Value = float64(s.Int())
		case KindGauge:
			out.Value = s.Float()
		case KindHistogram:
			out.Value = s.Hist.Mean()
			out.Count = s.Hist.Count()
			out.Sum = s.Hist.Sum()
			out.P50 = s.Hist.Percentile(50)
			out.P99 = s.Hist.Percentile(99)
		}
	}
}

// Sample is one series observation inside a Batch. Counters carry the
// cumulative total in Value; gauges the level; histograms the mean in Value
// plus count/sum and interpolated percentiles.
type Sample struct {
	ID    string  `json:"id"`
	Kind  Kind    `json:"kind"`
	Value float64 `json:"value"`
	Count int64   `json:"count,omitempty"`
	Sum   int64   `json:"sum,omitempty"`
	P50   int64   `json:"p50,omitempty"`
	P99   int64   `json:"p99,omitempty"`
}

// Batch is one synchronized snapshot of the whole registry, stamped with the
// core-clock cycle and simulated time it was taken at.
type Batch struct {
	// Design and App label the run the batch belongs to.
	Design string `json:"design"`
	App    string `json:"app"`
	// Cycle is the core-clock cycle of the sample point; TimePs the
	// simulated time in picoseconds.
	Cycle  int64 `json:"cycle"`
	TimePs int64 `json:"time_ps"`
	// Final marks the end-of-run flush batch.
	Final   bool     `json:"final,omitempty"`
	Samples []Sample `json:"samples"`
}

// Clone deep-copies the batch so a sink can retain it past Emit.
func (b *Batch) Clone() *Batch {
	c := *b
	c.Samples = make([]Sample, len(b.Samples))
	copy(c.Samples, b.Samples)
	return &c
}

// SplitID splits a series identifier into component, domain, and name.
func SplitID(id string) (comp, domain, name string) {
	comp, rest, ok := strings.Cut(id, "/")
	if !ok {
		return "", "", id
	}
	domain, name, ok = strings.Cut(rest, "/")
	if !ok {
		return comp, "", rest
	}
	return comp, domain, name
}

// Families returns the distinct family names in the batch, sorted, with the
// kind of each (families are homogeneous by construction).
func (b *Batch) Families() []string {
	seen := map[string]bool{}
	var out []string
	for i := range b.Samples {
		_, _, name := SplitID(b.Samples[i].ID)
		if !seen[name] {
			seen[name] = true
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}
